"""Fixed-size message framing for the XOR-equivocation wire format."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.protocols.common import (
    DEFAULT_MSG_LEN,
    MessageTooLong,
    pad_message,
    unpad_message,
)


def test_roundtrip_basic():
    for value in (b"", b"x", "text", 42, None, (1, b"two", ("three",))):
        assert unpad_message(pad_message(value, 128)) == value


def test_exact_size():
    assert len(pad_message(b"x", 100)) == 100
    assert len(pad_message(b"x", DEFAULT_MSG_LEN)) == DEFAULT_MSG_LEN


def test_too_long_rejected():
    with pytest.raises(MessageTooLong):
        pad_message(b"x" * 125, 128)


def test_boundary_fits():
    payload = b"x" * (128 - 4 - 9)  # bytes encoding: 1 tag + 8 length
    assert unpad_message(pad_message(payload, 128)) == payload


def test_unpad_garbage_raises():
    with pytest.raises(ValueError):
        unpad_message(b"\xff" * 64)
    with pytest.raises(ValueError):
        unpad_message(b"\x00\x00")


def test_unpad_length_field_out_of_range():
    bad = (1000).to_bytes(4, "big") + b"\x00" * 60
    with pytest.raises(ValueError):
        unpad_message(bad)


payloads = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**32), max_value=2**32)
    | st.binary(max_size=24)
    | st.text(max_size=12),
    lambda children: st.lists(children, max_size=3).map(tuple),
    max_leaves=6,
)


@given(payloads)
def test_roundtrip_property(value):
    assert unpad_message(pad_message(value, 512)) == value


@given(st.binary(max_size=100), st.binary(max_size=100))
def test_padded_distinct_for_distinct_messages(a, b):
    if a != b:
        assert pad_message(a, 256) != pad_message(b, 256)
