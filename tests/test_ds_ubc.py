"""UBC over real Dolev–Strong runs: signatures down to the network layer."""


from repro.core.stacks import MSG_LEN_SBC
from repro.functionalities.random_oracle import RandomOracle
from repro.functionalities.tle import TimeLockEncryption
from repro.protocols.ds_ubc import DolevStrongUBCAdapter
from repro.protocols.sbc_protocol import SBCParty, SBCProtocolAdapter
from repro.uc.entity import Party
from repro.uc.environment import Environment
from repro.uc.session import Session


class Collector(Party):
    def __init__(self, session, pid, ubc):
        super().__init__(session, pid)
        self.received = []
        self.route[ubc.fid] = lambda message, source: self.received.append(message)
        ubc.attach(self)

    def on_deliver(self, message, source):
        handler = self.route.get(source.fid)
        if handler:
            handler(message, source)


def _world(n=4, t=1, seed=1):
    session = Session(seed=seed)
    pids = [f"P{i}" for i in range(n)]
    ubc = DolevStrongUBCAdapter(session, pids=pids, t=t)
    parties = {pid: Collector(session, pid, ubc) for pid in pids}
    return session, ubc, parties, Environment(session)


def test_delivery_after_ds_latency():
    session, ubc, parties, env = _world(t=2)
    ubc.broadcast(parties["P0"], b"signed-message")
    env.run_rounds(2)
    assert parties["P1"].received == []  # still relaying
    env.run_rounds(2)
    for party in parties.values():
        assert party.received == [("Broadcast", b"signed-message", "P0")]


def test_multiple_concurrent_runs():
    session, ubc, parties, env = _world(t=1)
    ubc.broadcast(parties["P0"], b"a")
    ubc.broadcast(parties["P1"], b"b")
    env.run_rounds(1)
    ubc.broadcast(parties["P2"], b"c")
    env.run_rounds(4)
    for party in parties.values():
        messages = sorted(m for _, m, _ in party.received)
        assert messages == [b"a", b"b", b"c"]


def test_signatures_actually_used():
    session, ubc, parties, env = _world(t=1)
    ubc.broadcast(parties["P0"], b"m")
    env.run_rounds(3)
    assert session.metrics.get("sig.sign") >= 4  # sender + relayers
    assert session.metrics.get("sig.verify") > 0


def test_corrupted_sender_equivocation_yields_no_delivery():
    """Two signed values circulate; honest parties accept both → drop."""
    session, ubc, parties, env = _world(n=4, t=1)
    session.corrupt("P0")
    # The adversary starts a run, then injects a second signed value into
    # the same run by signing with the corrupted key.
    ubc.adv_broadcast("P0", b"value-A")
    run_id = 0
    other = ubc._payload(run_id, "P0", b"value-B")
    signature = ubc.certs["P0"].sign("P0", other)
    for recipient in ("P1", "P2"):
        ubc.network.adv_send(
            "P0", recipient, (run_id, b"value-B", (("P0", signature),))
        )
    env.run_rounds(4)
    # P1 and P2 accepted both values -> no delivery for this run; P3 saw
    # only value-A relayed with >= round-count signatures... agreement
    # demands all honest parties output the same thing:
    views = {pid: tuple(parties[pid].received) for pid in ("P1", "P2", "P3")}
    assert len(set(views.values())) == 1


def test_sbc_over_ds_ubc_end_to_end():
    """The deepest composition: ΠSBC with its UBC realized by signatures.

    Requires Δ > Dolev–Strong latency so ciphertext broadcasts started
    before t_end still land before τ_rel.
    """
    session = Session(seed=5)
    pids = [f"P{i}" for i in range(3)]
    t = 1
    ubc = DolevStrongUBCAdapter(session, pids=pids, t=t, fid="DSUBC:sbc")
    tle = TimeLockEncryption(session, leak=lambda cl: cl + 1, delay=1, fid="FTLE")
    oracle = RandomOracle(session, fid="FRO:sbc", digest_size=MSG_LEN_SBC)
    phi, delta = 6, 3 + t + 2  # Δ budgets for the DS latency
    sbc = SBCProtocolAdapter(
        session, ubc=ubc, tle=tle, oracle=oracle, phi=phi, delta=delta
    )
    parties = {pid: SBCParty(session, pid, sbc) for pid in pids}
    # SBCParty routes the UBC layer to the SBC adapter; the DS adapter
    # additionally needs its network routed per party:
    for party in parties.values():
        ubc.attach(party)
    env = Environment(session)

    parties["P0"].broadcast(b"deep-stack-message")
    env.run_rounds(1)
    parties["P1"].broadcast(b"second-sender")
    # Wake_Up itself takes t+2 rounds, so the whole session shifts:
    env.run_rounds(phi + delta + t + 4)
    batches = {
        pid: [o[1] for o in party.outputs if o[0] == "Broadcast"]
        for pid, party in parties.items()
    }
    for pid, batch_list in batches.items():
        assert batch_list, f"{pid} must terminate"
        assert batch_list[-1] == [b"deep-stack-message", b"second-sender"]
    assert session.metrics.get("sig.sign") > 0  # broadcasts really signed
