"""SweepConfig: one validated knob set for every execution entry point.

The api_redesign contract: every execution knob lives on one frozen
dataclass, validation fires at construction (with the legacy error
messages), the back-compat shim warns on positional use and refuses
ambiguous mixes, and — the drift regression that motivated the redesign
— ``SessionPool``, ``ParallelSweep`` and ``run_matrix`` accept the
identical knob set.
"""

import argparse
import inspect
import warnings

import pytest

from repro.runtime import (
    ParallelSweep,
    SessionPool,
    SweepConfig,
    run_sbc_trial,
)
from repro.runtime.config import (
    EXECUTORS,
    LEGACY_KNOB_ORDER,
    add_sweep_options,
)
from repro.runtime.supervisor import ChaosPlan, RetryPolicy


# ---------------------------------------------------------------------------
# validation: every bad combination fails at construction


@pytest.mark.parametrize(
    "kwargs, match",
    [
        ({"executor": "fork"}, "executor must be inline/thread/process"),
        ({"chunksize": 0}, "chunksize must be >= 1"),
        ({"max_tasks_per_child": 0}, "max_tasks_per_child must be >= 1"),
        ({"consume_forward": True}, "needs online=True"),
        (
            {"batch_verify": True, "executor": "thread"},
            "not supported on the thread executor",
        ),
        ({"retry": RetryPolicy(max_attempts=2)}, "executor='process'"),
        ({"journal": "sweep.jsonl"}, "executor='process'"),
        ({"resume": True, "executor": "process"}, "journal"),
        ({"trace": "loud"}, "trace must be one of"),
        ({"online": True, "executor": "process"}, "disk.*shared|pools"),
        (
            {"online": True, "material": "disk", "executor": "thread"},
            "thread executor",
        ),
        (
            {
                "online": True,
                "material": "disk",
                "executor": "process",
                "warmup": False,
            },
            "warmup=True",
        ),
    ],
)
def test_validation_fails_fast(kwargs, match):
    with pytest.raises(ValueError, match=match):
        SweepConfig(**kwargs)


def test_unknown_backend_rejected_at_construction():
    with pytest.raises(Exception, match="warp"):
        SweepConfig(backend="warp")


def test_chaos_spec_string_is_parsed():
    config = SweepConfig(executor="process", chaos="kill@3,exc@5")
    assert isinstance(config.chaos, ChaosPlan)


def test_batch_policy_resolution():
    from repro.crypto.batch import BatchPolicy

    assert SweepConfig().batch_policy is None
    assert isinstance(SweepConfig(batch_verify=True).batch_policy, BatchPolicy)
    pinned = BatchPolicy(record_trace=False)
    assert SweepConfig(batch_verify=pinned).batch_policy is pinned


def test_replace_revalidates():
    config = SweepConfig()
    with pytest.raises(ValueError, match="executor"):
        config.replace(executor="bogus")
    assert config.replace(trace="full").trace == "full"


# ---------------------------------------------------------------------------
# the argparse bridge


def _parse(argv, executor_default="inline", trace_default="light"):
    parser = argparse.ArgumentParser()
    add_sweep_options(parser, executor_default, trace_default)
    return parser.parse_args(argv)


def test_from_args_defaults():
    config = SweepConfig.from_args(_parse([]), backend="sequential")
    assert config.backend == "sequential"
    assert config.executor == "inline"
    assert config.trace == "light"
    assert config.retry is None and config.deadline is None
    assert config.chaos is None


def test_from_args_builds_supervision_policies():
    namespace = _parse(
        [
            "--executor", "process",
            "--retry-attempts", "5",
            "--deadline-cap-s", "7.5",
            "--chaos", "kill@3",
        ]
    )
    config = SweepConfig.from_args(namespace, backend="pooled")
    assert config.retry.max_attempts == 5
    assert config.deadline.cap_s == 7.5
    assert config.deadline.floor_s == 7.5  # min(cap, 60): never above the cap
    assert isinstance(config.chaos, ChaosPlan)


def test_from_args_overrides_win():
    config = SweepConfig.from_args(
        _parse(["--trace", "full"]), backend="pooled", trace=None
    )
    assert config.trace is None


def test_executor_choices_come_from_one_place():
    parser = argparse.ArgumentParser()
    add_sweep_options(parser)
    action = next(a for a in parser._actions if a.dest == "executor")
    assert tuple(action.choices) == EXECUTORS


# ---------------------------------------------------------------------------
# the back-compat shim


def test_positional_knobs_warn_but_work():
    with pytest.warns(DeprecationWarning, match="positionally"):
        pool = SessionPool(run_sbc_trial, "sequential", "inline")
    assert pool.config.backend == "sequential"
    assert pool.executor == "inline"


def test_keyword_knobs_stay_silent():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        pool = SessionPool(run_sbc_trial, backend="sequential", executor="inline")
    assert pool.executor == "inline"


def test_config_plus_knobs_is_ambiguous():
    with pytest.raises(TypeError, match="not both"):
        SessionPool(run_sbc_trial, config=SweepConfig(), executor="thread")


def test_positional_overflow_refused():
    stray = ["sequential"] + [None] * len(LEGACY_KNOB_ORDER)
    with pytest.raises(TypeError, match="positional"):
        SessionPool(run_sbc_trial, *stray)


def test_positional_and_keyword_overlap_refused():
    with pytest.warns(DeprecationWarning):
        with pytest.raises(TypeError, match="multiple values for backend"):
            SessionPool(run_sbc_trial, "sequential", backend="pooled")


# ---------------------------------------------------------------------------
# the drift regression: three entry points, one knob set


KNOB_VALUES = dict(
    backend="sequential",
    executor="process",
    workers=2,
    chunksize=1,
    max_tasks_per_child=1,
    warmup=True,
    material=None,
    material_groups=None,
    adaptive=False,
    online=False,
    consume_forward=False,
    batch_verify=False,
    retry=None,
    deadline=None,
    chaos=None,
    journal=None,
    resume=False,
    trace="light",
)


def test_knob_values_cover_the_whole_contract():
    assert set(KNOB_VALUES) == set(SweepConfig.knob_names())
    assert set(LEGACY_KNOB_ORDER) == set(SweepConfig.knob_names())


@pytest.mark.parametrize("owner", [SessionPool, ParallelSweep])
def test_pool_and_sweep_accept_every_knob_by_keyword(owner):
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        instance = owner(run_sbc_trial, **KNOB_VALUES)
    pool = instance if owner is SessionPool else instance._pool
    config = pool.config
    assert config.executor == "process"
    assert config.workers == 2
    assert config.trace == "light"
    # Every name was consumed as a knob — nothing leaked to the runner.
    assert pool.runner_kwargs == {}


def test_run_matrix_signature_regained_the_supervision_knobs():
    """run_matrix silently lacked retry/deadline/journal/resume/trace for
    two PRs; the unified config closed the gap and this pins it shut."""
    from repro.scenarios.runner import run_matrix

    params = set(inspect.signature(run_matrix).parameters)
    assert "config" in params
    missing = set(SweepConfig.knob_names()) - params
    # Two knobs are interpreted, not forwarded: the backend is a matrix
    # axis (forced to sequential), and material_groups only travels via
    # config= — everything else is first-class.
    assert missing == {"backend", "material_groups"}


def test_async_host_shares_the_config_object():
    from repro.runtime import AsyncSessionHost

    config = SweepConfig(backend="async", executor="inline", trace="light")
    host = AsyncSessionHost(config=config)
    assert host.config is config
