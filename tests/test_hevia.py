"""Hevia-style honest-majority SBC baseline: works under t < n/2, breaks above."""

import pytest

from repro.baselines.hevia import (
    HeviaCoalitionAttack,
    HeviaSBCNetwork,
    message_to_scalar,
    scalar_to_message,
)
from repro.uc.environment import Environment
from repro.uc.session import Session


def _run_baseline(n, coalition_size, seed=7, message=b"secret-bid"):
    coalition = [f"P{i}" for i in range(n - coalition_size, n)]
    attack = HeviaCoalitionAttack(coalition)
    session = Session(seed=seed, adversary=attack)
    network = HeviaSBCNetwork.build(session, n=n)
    attack.baseline = network
    env = Environment(session)
    env.run_round([("P0", lambda p: p.broadcast(message))])
    env.run_rounds(4)
    return attack, network


def test_message_scalar_roundtrip():
    for message in (b"", b"x", b"a" * 30):
        assert scalar_to_message(message_to_scalar(message)) == message


def test_message_too_long_rejected():
    with pytest.raises(ValueError):
        message_to_scalar(b"y" * 31)


def test_honest_run_delivers():
    session = Session(seed=1)
    network = HeviaSBCNetwork.build(session, n=4)
    env = Environment(session)
    env.run_round(
        [
            ("P0", lambda p: p.broadcast(b"alpha")),
            ("P1", lambda p: p.broadcast(b"beta")),
        ]
    )
    env.run_rounds(4)
    for party in network.parties.values():
        assert party.outputs == [("Broadcast", [b"alpha", b"beta"])]


def test_simultaneity_holds_below_threshold():
    """Coalition of t learns nothing before the reveal phase."""
    n = 5  # threshold t = 2
    attack, _network = _run_baseline(n, coalition_size=2)
    assert attack.learned == {}
    assert attack.copied == []


def test_simultaneity_breaks_at_threshold_plus_one():
    """Coalition of t+1 reconstructs honest messages early and copies."""
    n = 5
    attack, network = _run_baseline(n, coalition_size=3)
    assert "P0" in attack.learned
    message, learned_round = attack.learned["P0"]
    assert message == b"secret-bid"
    assert learned_round < network.reveal_round
    assert attack.copied == [b"secret-bid"]


def test_copy_lands_in_honest_outputs():
    n = 4  # threshold 1, coalition 2 >= t+1
    attack, network = _run_baseline(n, coalition_size=2)
    honest = network.parties["P0"]
    assert honest.outputs
    batch = honest.outputs[-1][1]
    assert batch.count(b"secret-bid") == 2  # original + coalition's copy


def test_cliff_location_across_n():
    """The break happens exactly when the coalition passes n/2."""
    for n in (4, 5, 6, 7):
        threshold = (n - 1) // 2
        below, _ = _run_baseline(n, coalition_size=threshold)
        above, _ = _run_baseline(n, coalition_size=threshold + 1)
        assert below.learned == {}, f"n={n}: coalition of t must learn nothing"
        assert above.learned, f"n={n}: coalition of t+1 must break simultaneity"


def test_feldman_commitments_checked_in_reveal():
    """A corrupted echo of a tampered share is discarded."""
    session = Session(seed=3)
    network = HeviaSBCNetwork.build(session, n=4)
    env = Environment(session)
    env.run_round([("P0", lambda p: p.broadcast(b"msg"))])
    session.corrupt("P3")
    # P3 echoes a garbage share claiming to be from P0's dealing.
    network.ubc.adv_broadcast("P3", ("HeviaReveal", "P3", (("P0", 1, 12345),)))
    env.run_rounds(4)
    batch = network.parties["P1"].outputs[-1][1]
    assert batch == [b"msg"]  # tampered share did not corrupt the output
