"""Cross-world integration: the executable UC-realization statements.

For each theorem, the ideal world and the protocol world(s) are driven by
the same environment script and must produce identical honest outputs —
across seeds, schedules and message patterns.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build_sbc_stack
from repro.core.stacks import build_fbc_fixture
from repro.functionalities.dummy import DummyBroadcastParty
from repro.functionalities.fbc import FairBroadcast
from repro.uc.environment import Environment
from repro.uc.session import Session


@pytest.mark.parametrize("seed", [1, 7, 99])
def test_sbc_three_worlds_agree_across_seeds(seed):
    results = {}
    for mode in ("ideal", "hybrid", "composed"):
        stack = build_sbc_stack(n=4, mode=mode, seed=seed)
        stack.parties["P0"].broadcast(b"m0")
        stack.parties["P3"].broadcast(b"m3")
        stack.run_until_delivery()
        results[mode] = stack.delivered()
    assert results["ideal"] == results["hybrid"] == results["composed"]


@pytest.mark.parametrize(
    "order",
    [
        ["P0", "P1", "P2", "P3"],
        ["P3", "P2", "P1", "P0"],
        ["P2", "P0", "P3", "P1"],
    ],
)
def test_sbc_outputs_independent_of_activation_order(order):
    """The adversary schedules activations; outputs must not move."""
    for mode in ("hybrid", "composed"):
        stack = build_sbc_stack(n=4, mode=mode, seed=5)
        stack.env.order = order
        stack.parties["P1"].broadcast(b"x")
        stack.parties["P2"].broadcast(b"y")
        stack.run_until_delivery()
        delivered = stack.delivered()
        assert all(batch == [b"x", b"y"] for batch in delivered.values())


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    messages=st.lists(
        st.tuples(st.integers(min_value=0, max_value=3), st.binary(min_size=1, max_size=24)),
        min_size=1,
        max_size=4,
        unique_by=lambda x: x[1],
    ),
)
def test_sbc_hybrid_matches_ideal_property(seed, messages):
    """Random message patterns: hybrid ≡ ideal (Theorem 2, sampled)."""
    results = []
    for mode in ("ideal", "hybrid"):
        stack = build_sbc_stack(n=4, mode=mode, seed=seed)
        for sender_index, payload in messages:
            stack.parties[f"P{sender_index}"].broadcast(payload)
        stack.run_until_delivery()
        results.append(stack.delivered())
    assert results[0] == results[1]


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_fbc_real_matches_ideal_property(seed):
    """Random seeds: ΠFBC ≡ F^{2,2}_FBC under a fixed two-round script."""
    outcomes = []
    for real in (False, True):
        session = Session(seed=seed)
        if real:
            service = build_fbc_fixture(session, q=4).fbc
        else:
            service = FairBroadcast(session, delta=2, alpha=2)
        parties = {
            f"P{i}": DummyBroadcastParty(session, f"P{i}", service) for i in range(3)
        }
        if real:
            for party in parties.values():
                service.attach(party)
        env = Environment(session)
        env.run_round([("P0", lambda p: p.broadcast(b"one"))])
        env.run_round([("P1", lambda p: p.broadcast(b"two"))])
        env.run_rounds(3)
        outcomes.append({pid: tuple(p.outputs) for pid, p in parties.items()})
    assert outcomes[0] == outcomes[1]


def test_full_stack_metrics_accounting():
    """The composed world actually exercises the metered substrate."""
    stack = build_sbc_stack(n=4, mode="composed", seed=2)
    stack.parties["P0"].broadcast(b"m")
    stack.run_until_delivery()
    metrics = stack.session.metrics
    assert metrics.get("ro.total") > 0
    assert metrics.get("ro.points") > 0
    assert metrics.get("rounds.advanced") >= stack.phi + stack.delta
    assert metrics.get("messages.total") > 0
