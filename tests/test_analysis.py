"""Analysis helpers: table formatting and attack statistics."""

import math

from repro.analysis.stats import bit_bias, proportion, uniformity_pvalue
from repro.analysis.tables import format_table


def test_format_table_alignment():
    rows = [
        {"name": "a", "value": 1, "rate": 0.5},
        {"name": "longer-name", "value": 100, "rate": 1.0},
    ]
    table = format_table(rows, title="T")
    lines = table.splitlines()
    assert lines[0] == "T"
    assert "longer-name" in table
    assert "0.500" in table  # floats to 3 decimals
    # header and separator line up
    assert len(lines[1]) == len(lines[2])


def test_format_table_column_selection():
    rows = [{"a": 1, "b": 2}]
    table = format_table(rows, columns=["b"])
    assert "b" in table and "a" not in table.splitlines()[0]


def test_format_table_empty():
    assert format_table([], title="empty") == "empty"
    assert format_table([]) == "(no rows)"


def test_format_table_special_cells():
    rows = [{"flag": True, "other": False, "missing": None}]
    table = format_table(rows)
    assert "yes" in table and "no" in table and "-" in table


def test_proportion():
    assert proportion(3, 4) == 0.75
    assert proportion(0, 0) == 0.0


def test_bit_bias():
    all_ones = [b"\xff" * 4] * 10
    all_zero = [b"\x00" * 4] * 10
    assert bit_bias(all_ones, bit=0) == 1.0
    assert bit_bias(all_zero, bit=0) == 0.0
    assert bit_bias([], bit=0) == 0.0
    mixed = [b"\x80\x00", b"\x00\x00"]
    assert bit_bias(mixed, bit=0) == 0.5


def test_bit_bias_bit_indexing():
    # bit 8 = MSB of byte 1
    samples = [b"\x00\x80", b"\x00\x80"]
    assert bit_bias(samples, bit=8) == 1.0
    assert bit_bias(samples, bit=0) == 0.0


def test_uniformity_pvalue_fair_vs_biased():
    fair = [b"\x80" * 1, b"\x00" * 1] * 50
    biased = [b"\x00"] * 100
    assert uniformity_pvalue(fair, bit=0) > 0.9
    assert uniformity_pvalue(biased, bit=0) < 1e-6
    assert uniformity_pvalue([], bit=0) == 1.0


def test_uniformity_pvalue_monotone_in_sample_size():
    """The same empirical skew is more damning with more samples."""
    small = [b"\x00"] * 6 + [b"\x80"] * 2
    large = [b"\x00"] * 60 + [b"\x80"] * 20
    assert uniformity_pvalue(large, bit=0) < uniformity_pvalue(small, bit=0)
    assert not math.isnan(uniformity_pvalue(small, bit=0))
