"""Tests for the multi-core sweep engine (`runtime/sweep.py`).

The sweep driver's contract: any (runner, task list) workload shards
across process workers with deterministic result ordering and
seed-for-seed trace-digest equality against the inline executor, with
per-worker crypto warm-up and bounded worker lifetimes.
"""

import pytest

from repro.runtime import (
    ParallelSweep,
    SweepPlan,
    TraceDigestUnavailable,
    run_sbc_trial,
)

PARAMS = dict(n=3, mode="hybrid", phi=4, delta=2)


# ---------------------------------------------------------------------------
# Planning
# ---------------------------------------------------------------------------


def test_plan_resolves_workers_and_chunks():
    sweep = ParallelSweep(executor="process", workers=4, **PARAMS)
    plan = sweep.plan(64)
    assert plan == SweepPlan(
        tasks=64, executor="process", workers=4, chunksize=4,
        max_tasks_per_child=None, warmup=True,
    )
    assert plan.chunks == 16
    assert plan.summary()["chunks"] == 16


def test_plan_honors_explicit_chunksize():
    sweep = ParallelSweep(executor="process", workers=2, chunksize=5, **PARAMS)
    plan = sweep.plan(12)
    assert plan.chunksize == 5
    assert plan.chunks == 3  # 5 + 5 + 2


def test_plan_inline_executor_is_single_stream():
    plan = ParallelSweep(executor="inline", **PARAMS).plan(10)
    assert plan.workers == 1
    assert plan.chunksize == 1


def test_invalid_config_fails_at_construction():
    with pytest.raises(ValueError, match="chunksize"):
        ParallelSweep(chunksize=0)
    with pytest.raises(ValueError, match="executor"):
        ParallelSweep(executor="quantum")
    with pytest.raises(ValueError, match="max_tasks_per_child"):
        ParallelSweep(max_tasks_per_child=-1)


# ---------------------------------------------------------------------------
# Determinism: process fan-out == inline reference
# ---------------------------------------------------------------------------


def test_process_sweep_verifies_against_inline():
    sweep = ParallelSweep(
        executor="process", workers=2, chunksize=2, **PARAMS
    )
    verdict = sweep.verify(range(4))
    assert verdict.matched
    assert [r.seed for r in verdict.report.results] == list(range(4))
    assert [r.seed for r in verdict.reference.results] == list(range(4))
    assert verdict.speedup > 0
    assert verdict.report.executor == "process"
    assert verdict.reference.executor == "inline"


def test_inline_sweep_verify_is_reflexive():
    # executor="inline" keeps one code path for both modes; verify still
    # runs two executions and compares digests.
    verdict = ParallelSweep(executor="inline", **PARAMS).verify(range(3))
    assert verdict.matched


def test_verify_refuses_trace_off_sweeps():
    sweep = ParallelSweep(executor="inline", trace="light", **PARAMS)
    with pytest.raises(TraceDigestUnavailable):
        sweep.verify(range(2))


def test_verify_rejects_empty_task_list():
    with pytest.raises(ValueError, match="empty"):
        ParallelSweep(executor="inline", **PARAMS).verify([])


def test_run_results_keep_task_order_under_recycling():
    sweep = ParallelSweep(
        executor="process", workers=2, chunksize=1,
        max_tasks_per_child=2, **PARAMS,
    )
    report = sweep.run(range(5))
    assert [r.seed for r in report.results] == list(range(5))
    inline = ParallelSweep(executor="inline", **PARAMS).run(range(5))
    assert [r.digest for r in report.results] == [r.digest for r in inline.results]


# ---------------------------------------------------------------------------
# Scenario-matrix cells through the sweep engine
# ---------------------------------------------------------------------------


def test_scenario_cells_shard_across_processes():
    from repro.scenarios import default_matrix, run_matrix

    specs = [
        spec for spec in default_matrix().expand()
        if spec.stack == "ubc" and spec.backend == "sequential"
    ][:6]
    assert len(specs) >= 2
    inline = run_matrix(specs, executor="inline")
    fanned = run_matrix(specs, executor="process", workers=2, chunksize=2)
    assert [cell.cell_id for cell in fanned.cells] == [
        cell.cell_id for cell in inline.cells
    ]
    assert [cell.digest for cell in fanned.cells] == [
        cell.digest for cell in inline.cells
    ]
    assert fanned.ok


def test_sbc_trial_worker_warmup_smoke():
    # The initializer path itself: one process worker, warmed, running the
    # default SBC trial runner end to end.
    sweep = ParallelSweep(
        runner=run_sbc_trial, executor="process", workers=1, **PARAMS
    )
    report = sweep.run([21])
    assert report.results[0].seed == 21
    assert report.results[0].outputs


# ---------------------------------------------------------------------------
# Review regressions: recycle bounds, plan accuracy, CLI edge cases
# ---------------------------------------------------------------------------


def test_recycle_bound_clamps_chunksize():
    # multiprocessing.Pool counts one chunk as one task, so a chunk wider
    # than the recycle bound would overshoot it; the pool clamps.
    from repro.runtime import SessionPool

    report = SessionPool(
        executor="process", workers=2, chunksize=8,
        max_tasks_per_child=2, **PARAMS,
    ).run(range(4))
    assert report.chunksize == 2  # clamped from 8 to the recycle bound
    plan = ParallelSweep(
        executor="process", workers=2, chunksize=8,
        max_tasks_per_child=2, **PARAMS,
    ).plan(4)
    assert plan.chunksize == 2  # plan() reports the same clamp


def test_plan_thread_executor_reports_real_default_workers():
    import os

    plan = ParallelSweep(executor="thread", **PARAMS).plan(10)
    assert plan.workers == min(32, (os.cpu_count() or 1) + 4)
    explicit = ParallelSweep(executor="thread", workers=3, **PARAMS).plan(10)
    assert explicit.workers == 3


def test_cli_sweep_rejects_empty_session_count(capsys):
    from repro.cli import main

    assert main(["sweep", "--sessions", "0", "--executor", "inline"]) == 2
    assert main(["bench", "--sessions", "0"]) == 2
    assert "--sessions must be >= 1" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Adaptive chunking: EWMA re-planning, bounded moves, determinism
# ---------------------------------------------------------------------------


def test_plan_carries_material_and_adaptive_fields():
    sweep = ParallelSweep(
        executor="process", workers=2, material="disk", adaptive=True, **PARAMS
    )
    plan = sweep.plan(8)
    assert plan.material_source == "disk"
    assert plan.adaptive is True
    summary = plan.summary(adaptivity=[{"wave": 0}])
    assert summary["material_source"] == "disk"
    assert summary["adaptive"] is True
    assert summary["adaptivity"] == [{"wave": 0}]
    # Non-process executors never re-plan, whatever the constructor said.
    inline = ParallelSweep(executor="inline", adaptive=True, **PARAMS).plan(8)
    assert inline.adaptive is False


def test_adaptive_sweep_matches_inline_and_records_trace():
    sweep = ParallelSweep(
        executor="process", workers=2, chunksize=1, adaptive=True, **PARAMS
    )
    verdict = sweep.verify(range(10))
    assert verdict.matched
    assert [r.seed for r in verdict.report.results] == list(range(10))
    trace = verdict.report.adaptivity
    assert trace, "adaptive process sweep must record its re-planning trace"
    assert sum(entry["tasks"] for entry in trace) == 10
    assert all(entry["chunksize"] >= 1 for entry in trace)
    assert verdict.report.summary()["adaptive_waves"] == len(trace)


def test_adaptive_never_grows_chunks_under_recycling():
    from repro.runtime.pool import _replan_chunksize

    # Trials looking instant would suggest huge chunks; recycling caps
    # growth at the current size so the per-worker bound holds.
    assert _replan_chunksize(4, 1e-6, max_tasks_per_child=8) == 4
    assert _replan_chunksize(4, 1e-6, max_tasks_per_child=None) == 16  # 4x cap
    # Slow trials shrink (bounded to /4 per step) in both modes.
    assert _replan_chunksize(16, 10.0, max_tasks_per_child=8) == 4
    assert _replan_chunksize(16, 10.0, max_tasks_per_child=None) == 4
    # Near-target observations keep the size put.
    from repro.runtime.pool import ADAPTIVE_TARGET_CHUNK_S

    assert _replan_chunksize(4, ADAPTIVE_TARGET_CHUNK_S / 4, None) == 4


def test_adaptive_sweep_with_recycling_stays_deterministic():
    sweep = ParallelSweep(
        executor="process", workers=2, chunksize=2, adaptive=True,
        max_tasks_per_child=2, **PARAMS
    )
    report = sweep.run(range(8))
    assert [r.seed for r in report.results] == list(range(8))
    assert all(entry["chunksize"] <= 2 for entry in report.adaptivity)
    inline = ParallelSweep(executor="inline", **PARAMS).run(range(8))
    assert [r.digest for r in report.results] == [r.digest for r in inline.results]
