"""Tests for the CI bench-regression guard (`benchmarks/compare_trajectory.py`).

The guard diffs two reference-perf artifact directories of ``bench.v1``
records and fails only on a wall-time regression past the threshold —
never on a missing baseline (the trajectory has to start somewhere) and
never across hosts with different core counts (those numbers are not
comparable).
"""

import importlib.util
import json
import pathlib

import pytest

_SCRIPT = (
    pathlib.Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "compare_trajectory.py"
)
_spec = importlib.util.spec_from_file_location("compare_trajectory", _SCRIPT)
trajectory = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(trajectory)


def _write_record(root, experiment, wall_time_s, cpus=4, schema="bench.v1"):
    root.mkdir(parents=True, exist_ok=True)
    (root / f"BENCH_{experiment}.json").write_text(
        json.dumps(
            {
                "schema": schema,
                "experiment": experiment,
                "wall_time_s": wall_time_s,
                "cpus": cpus,
                "backend": "pooled",
            }
        )
    )


def test_ok_within_threshold(tmp_path):
    _write_record(tmp_path / "base", "E17", 1.0)
    _write_record(tmp_path / "cur", "E17", 1.2)
    lines, regressions = trajectory.compare(
        tmp_path / "base", tmp_path / "cur", experiments=("E17",)
    )
    assert regressions == []
    assert any("1.20x" in line and "ok" in line for line in lines)


def test_regression_past_threshold_fails(tmp_path):
    _write_record(tmp_path / "base", "E19", 1.0)
    _write_record(tmp_path / "cur", "E19", 1.5)
    lines, regressions = trajectory.compare(
        tmp_path / "base", tmp_path / "cur", experiments=("E19",)
    )
    assert len(regressions) == 1
    assert "E19" in regressions[0]
    assert trajectory.main(
        [
            "--baseline", str(tmp_path / "base"),
            "--current", str(tmp_path / "cur"),
            "--experiments", "E19",
        ]
    ) == 1


def test_missing_baseline_is_not_a_failure(tmp_path):
    _write_record(tmp_path / "cur", "E14", 1.0)
    assert trajectory.main(
        [
            "--baseline", str(tmp_path / "nope"),
            "--current", str(tmp_path / "cur"),
        ]
    ) == 0
    (tmp_path / "base").mkdir()
    lines, regressions = trajectory.compare(
        tmp_path / "base", tmp_path / "cur", experiments=("E14",)
    )
    assert regressions == []
    assert any("no baseline" in line for line in lines)


def test_cpu_count_mismatch_skips_comparison(tmp_path):
    _write_record(tmp_path / "base", "E17", 1.0, cpus=1)
    _write_record(tmp_path / "cur", "E17", 10.0, cpus=4)
    lines, regressions = trajectory.compare(
        tmp_path / "base", tmp_path / "cur", experiments=("E17",)
    )
    assert regressions == []
    assert any("cpu counts differ" in line for line in lines)


def test_threshold_is_configurable(tmp_path):
    _write_record(tmp_path / "base", "E18", 1.0)
    _write_record(tmp_path / "cur", "E18", 1.2)
    _, tight = trajectory.compare(
        tmp_path / "base", tmp_path / "cur", threshold=0.1, experiments=("E18",)
    )
    assert len(tight) == 1
    _, loose = trajectory.compare(
        tmp_path / "base", tmp_path / "cur", threshold=0.5, experiments=("E18",)
    )
    assert loose == []


def test_unreadable_or_wrong_schema_records_are_skipped(tmp_path):
    base = tmp_path / "base"
    cur = tmp_path / "cur"
    _write_record(base, "E14", 1.0)
    _write_record(cur, "E14", 9.0, schema="bench.v0")
    lines, regressions = trajectory.compare(base, cur, experiments=("E14",))
    assert regressions == []
    assert any("no current record" in line for line in lines)
    (cur / "BENCH_E14.json").write_text("{not json")
    lines, regressions = trajectory.compare(base, cur, experiments=("E14",))
    assert regressions == []


@pytest.mark.parametrize("wall", [0, None])
def test_unusable_wall_times_are_skipped(tmp_path, wall):
    _write_record(tmp_path / "base", "E17", wall)
    _write_record(tmp_path / "cur", "E17", 1.0)
    lines, regressions = trajectory.compare(
        tmp_path / "base", tmp_path / "cur", experiments=("E17",)
    )
    assert regressions == []
    assert any("unusable wall times" in line for line in lines)
