"""FVS (Figure 17), adversarial clauses: adv_vote, Allow, corruption view."""

import pytest

from repro.functionalities.dummy import DummyVoterParty
from repro.functionalities.voting import VotingSystem
from repro.uc.entity import CorruptionError
from repro.uc.environment import Environment
from repro.uc.session import Session


def _world(phi=3, delta=2, alpha=1, n=3, seed=1, quota=1):
    session = Session(seed=seed)
    vs = VotingSystem(
        session, phi=phi, delta=delta, alpha=alpha,
        valid_votes=("a", "b"), quota=quota,
    )
    voters = {f"V{i}": DummyVoterParty(session, f"V{i}", vs) for i in range(n)}
    return session, vs, voters, Environment(session)


def test_votes_before_init_ignored():
    session, vs, voters, env = _world()
    assert vs.vote(voters["V0"], "a") is None  # no Init yet
    vs.init()
    assert vs.vote(voters["V0"], "a") is not None


def test_adv_vote_requires_corruption():
    session, vs, voters, env = _world()
    vs.init()
    with pytest.raises(CorruptionError):
        vs.adv_vote("V0", "a")
    session.corrupt("V0")
    assert vs.adv_vote("V0", "a") is not None


def test_adv_vote_validity_checked():
    session, vs, voters, env = _world()
    vs.init()
    session.corrupt("V0")
    assert vs.adv_vote("V0", "banana") is None


def test_allow_replaces_nonfinal_corrupted_vote():
    session, vs, voters, env = _world()
    vs.init()
    tag = vs.vote(voters["V0"], "a")
    session.corrupt("V0")
    assert vs.adv_allow(tag, "b", "V0")
    env.run_rounds(6)
    results = [o for o in voters["V1"].outputs if o[0] == "Result"]
    assert results[-1][1] == {"b": 1}


def test_allow_rejects_honest_and_invalid():
    session, vs, voters, env = _world()
    vs.init()
    tag = vs.vote(voters["V0"], "a")
    assert not vs.adv_allow(tag, "b", "V0")  # honest voter
    session.corrupt("V0")
    assert not vs.adv_allow(tag, "banana", "V0")  # invalid vote value


def test_corrupted_vote_without_allow_dropped():
    session, vs, voters, env = _world()
    vs.init()
    vs.vote(voters["V0"], "a")
    vs.vote(voters["V1"], "b")
    session.corrupt("V0")
    env.run_rounds(6)
    results = [o for o in voters["V2"].outputs if o[0] == "Result"]
    assert results[-1][1] == {"b": 1}


def test_corruption_request_view():
    session, vs, voters, env = _world()
    vs.init()
    tag = vs.vote(voters["V0"], "a")
    assert vs.adv_corruption_request() == []
    session.corrupt("V0")
    view = vs.adv_corruption_request()
    assert [(t, v) for t, v, _pid, _cl in view] == [(tag, "a")]


def test_quota_two_keeps_two_most_recent():
    session, vs, voters, env = _world(quota=2)
    vs.init()
    vs.vote(voters["V0"], "a")
    env.run_rounds(1)
    vs.vote(voters["V0"], "b")
    vs.vote(voters["V0"], "a")  # three votes, quota 2: first one dropped
    env.run_rounds(6)
    results = [o for o in voters["V1"].outputs if o[0] == "Result"]
    assert results[-1][1] == {"b": 1, "a": 1}


def test_result_leak_then_delivery_order():
    session, vs, voters, env = _world(phi=3, delta=2, alpha=1)
    vs.init()
    vs.vote(voters["V0"], "a")
    env.run_rounds(7)
    leaks = [
        e for e in session.log.filter(kind="leak", source="FVS")
        if e.detail and e.detail[0] == "Result"
    ]
    outputs = [
        e for e in session.log.filter(kind="output")
        if e.detail and e.detail[0] == "Result"
    ]
    assert leaks and outputs
    assert leaks[0].time == 4  # t_tally - alpha = 5 - 1
    assert min(o.time for o in outputs) == 5  # t_tally
