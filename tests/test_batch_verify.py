"""Batch verification: RLC engine, item builders, protocol integration.

The contract under test, end to end:

* :func:`~repro.crypto.batch.verify_batch` returns the *exact* per-item
  verdict vector (fallbacks and bisection leaves resolve through each
  item's ``check()``), identifies the precise culprit set, and costs one
  combined multi-exp when everything verifies;
* the item builders (Schnorr signatures, PoK, Chaum–Pedersen, ballot
  OR-proofs) screen memberships and structure, never overruling the
  per-item verifier's verdict;
* the opt-in seam leaves unbatched runs untouched, and batched protocol
  runs produce identical outputs — digest-identical with
  ``record_trace=False``, digest-pinned via ``verify.batch`` events
  otherwise (the online-spend doctrine).
"""

from __future__ import annotations

import random

import pytest

from repro.crypto.batch import (
    BATCH_EVENT_KIND,
    BatchItem,
    BatchPolicy,
    Equation,
    batching,
    current_policy,
    install_policy,
    verify_batch,
)
from repro.crypto.groups import TEST_GROUP
from repro.crypto.schnorr import (
    SchnorrSignature,
    schnorr_batch_item,
    schnorr_keygen,
    schnorr_sign,
)
from repro.crypto.zkp import (
    BallotProof,
    ballot_batch_item,
    ballot_prove,
    cp_batch_item,
    cp_prove,
    pok_batch_item,
    pok_prove,
)
from repro.functionalities.cert_adapter import real_cert_suite
from repro.functionalities.certification import RealCertification
from repro.runtime.pool import SessionPool, run_voting_trial

G = TEST_GROUP


def signature_items(rng, count, forge=()):
    """``count`` signature batch items; indices in ``forge`` get tampered s."""
    items = []
    for index in range(count):
        keypair = schnorr_keygen(rng)
        message = f"msg-{index}".encode()
        signature = schnorr_sign(keypair, message, rng)
        if index in forge:
            signature = SchnorrSignature(r=signature.r, s=(signature.s + 1) % G.q)
        items.append(schnorr_batch_item(G, keypair.public, message, signature))
    return items


# ---------------------------------------------------------------------------
# Engine: verdicts, culprits, evaluation counts
# ---------------------------------------------------------------------------


def test_all_valid_batch_costs_one_evaluation(rng):
    report = verify_batch(G, signature_items(rng, 8))
    assert report.all_valid
    assert report.verdicts == (True,) * 8
    assert report.culprits == ()
    assert report.batched == 8 and report.fallback == 0
    assert report.evaluations == 1


def test_single_forgery_bisects_to_exact_culprit(rng):
    report = verify_batch(G, signature_items(rng, 16, forge={5}))
    assert report.culprits == (5,)
    assert report.verdicts == tuple(index != 5 for index in range(16))
    # Bisection: more than one evaluation, far fewer than 16 checks.
    assert 1 < report.evaluations <= 2 * 16


def test_multiple_forgeries_exact_culprit_set(rng):
    report = verify_batch(G, signature_items(rng, 12, forge={0, 7, 11}))
    assert report.culprits == (0, 7, 11)


def test_verdict_parity_with_per_item_checks(rng):
    fuzz = random.Random(0xF0)
    for _ in range(5):
        count = fuzz.randrange(2, 10)
        forge = {i for i in range(count) if fuzz.random() < 0.4}
        items = signature_items(rng, count, forge=forge)
        report = verify_batch(G, items)
        assert report.verdicts == tuple(item.check() for item in items)


def test_seeded_coefficients_reproducible(rng):
    items = signature_items(rng, 10, forge={3})
    first = verify_batch(G, items, seed=77)
    again = verify_batch(G, items, seed=77)
    assert first == again
    other = verify_batch(G, items, seed=78)
    assert other.verdicts == first.verdicts  # verdicts never depend on the seed
    assert other.seed != first.seed


def test_below_min_items_resolves_per_item(rng):
    items = signature_items(rng, 1)
    report = verify_batch(G, items)
    assert report.verdicts == (True,)
    assert report.batched == 0 and report.fallback == 1 and report.evaluations == 0
    report = verify_batch(G, signature_items(rng, 3), min_items=5)
    assert report.all_valid and report.batched == 0 and report.fallback == 3


def test_items_without_equations_fall_back(rng):
    flagged = []
    item = BatchItem(bases=(), equations=(), check=lambda: flagged.append(1) or True)
    report = verify_batch(G, [item] + signature_items(rng, 4))
    assert report.verdicts[0] is True and flagged
    assert report.batched == 4 and report.fallback == 1


def test_non_member_bases_are_screened_not_overruled(rng):
    # p ≡ 3 (mod 4), so p - 1 is a quadratic non-residue: not a member.
    rogue = BatchItem(
        bases=(G.p - 1,),
        equations=(Equation(lhs=((G.p - 1, 2),), rhs=((1, 1),)),),
        check=lambda: True,  # the (laxer) per-item verifier accepts
    )
    report = verify_batch(G, [rogue] + signature_items(rng, 4))
    assert report.verdicts[0] is True  # screen routes to check(), never to False
    assert report.batched == 4 and report.fallback == 1


def test_all_items_invalid(rng):
    report = verify_batch(G, signature_items(rng, 4, forge={0, 1, 2, 3}))
    assert report.culprits == (0, 1, 2, 3)
    assert not report.all_valid


def test_trace_detail_shape(rng):
    detail = verify_batch(G, signature_items(rng, 6, forge={2})).trace_detail()
    assert detail["items"] == 6 and detail["batched"] == 6
    assert detail["culprits"] == [2] and detail["seed"] == 0x5BC
    assert detail["evaluations"] >= 2 and detail["fallback"] == 0


# ---------------------------------------------------------------------------
# Item builders: PoK, Chaum–Pedersen, ballot OR-proofs, mixed shapes
# ---------------------------------------------------------------------------


def pok_item(rng, tamper=False):
    secret = G.random_scalar(rng)
    public = G.power_of_g(secret)
    proof = pok_prove(G, G.g, public, secret, rng)
    if tamper:
        proof = type(proof)(a=proof.a, s=(proof.s + 1) % G.q)
    return pok_batch_item(G, G.g, public, proof)


def cp_item(rng, tamper=False):
    secret = G.random_scalar(rng)
    base2 = G.random_element(rng)
    public1, public2 = G.power_of_g(secret), G.exp(base2, secret)
    proof = cp_prove(G, G.g, public1, base2, public2, secret, rng)
    if tamper:
        proof = type(proof)(a1=proof.a1, a2=proof.a2, s=(proof.s + 1) % G.q)
    return cp_batch_item(G, G.g, public1, base2, public2, proof)


def ballot_item(rng, vote=1, tamper=False):
    secret = G.random_scalar(rng)
    seed = G.random_element(rng)
    w = G.power_of_g(secret)
    ballot = G.mul(G.exp(seed, secret), G.power_of_g(vote))
    proof = ballot_prove(G, seed, w, ballot, secret, vote, (0, 1), rng)
    if tamper:
        a1, a2, e, s = proof.branches[0]
        proof = BallotProof(branches=(((a1, a2, e, (s + 1) % G.q)),) + proof.branches[1:])
    return ballot_batch_item(G, seed, w, ballot, proof, (0, 1))


def test_mixed_shapes_batch_together(rng):
    items = [pok_item(rng), cp_item(rng), ballot_item(rng), *signature_items(rng, 3)]
    report = verify_batch(G, items)
    assert report.all_valid and report.batched == 6 and report.evaluations == 1


def test_tampered_proofs_are_caught_per_shape(rng):
    items = [
        pok_item(rng, tamper=True),
        cp_item(rng),
        ballot_item(rng, tamper=True),
        cp_item(rng, tamper=True),
        ballot_item(rng),
    ]
    report = verify_batch(G, items)
    assert report.culprits == (0, 2, 3)
    assert report.verdicts == (False, True, False, False, True)


def test_ballot_structural_failure_falls_back(rng):
    item = ballot_item(rng)
    truncated = ballot_batch_item(
        G,
        item.bases[1],
        item.bases[2],
        item.bases[3],
        BallotProof(branches=()),
        (0, 1),
    )
    assert truncated.equations == ()
    report = verify_batch(G, [truncated] + signature_items(rng, 4))
    assert report.verdicts[0] is False and report.fallback == 1


def test_batch_items_agree_with_direct_verifiers(rng):
    for builder, tamper in ((pok_item, False), (cp_item, True), (ballot_item, False)):
        item = builder(rng, tamper=tamper)
        assert bool(item.check()) == (not tamper)


# ---------------------------------------------------------------------------
# Certification surfaces
# ---------------------------------------------------------------------------


def test_real_certification_verify_batch_parity(session):
    authority = RealCertification(session)
    entries = []
    for index in range(6):
        pid = f"P{index}"
        message = f"m{index}".encode()
        signature = authority.sign(pid, message)
        if index == 4:
            signature = (signature[0], (signature[1] + 1) % G.q)
        entries.append((pid, message, signature))
    entries.append(("ghost", b"m", (1, 1)))  # unregistered pid
    before = session.metrics.snapshot()
    report = authority.verify_batch(entries)
    counted = session.metrics.diff(before).get("sig.verify", 0)
    assert counted == len(entries)
    expected = tuple(authority.verify(*entry) for entry in entries)
    assert report.verdicts == expected
    assert report.culprits == (4, 6)


def test_signer_cert_batch_item_matches_verify(session):
    certs = real_cert_suite(session, ("A", "B"))
    message = b"certified"
    good = certs["A"].sign("A", message)
    items = [
        certs["A"].batch_verify_item(message, good),
        certs["A"].batch_verify_item(message, b"short"),  # malformed encoding
        certs["B"].batch_verify_item(message, good),  # wrong signer's key
        certs["B"].batch_verify_item(message, certs["B"].sign("B", message)),
    ]
    report = verify_batch(G, items)
    assert report.verdicts == (
        certs["A"].verify(message, good),
        certs["A"].verify(message, b"short"),
        certs["B"].verify(message, good),
        True,
    )
    assert report.verdicts == (True, False, False, True)


# ---------------------------------------------------------------------------
# Ambient policy seam
# ---------------------------------------------------------------------------


def test_policy_seam_scopes_and_restores():
    assert current_policy() is None
    with batching(None):
        assert current_policy() is None
    policy = BatchPolicy(seed=9)
    with batching(policy):
        assert current_policy() is policy
        inner = BatchPolicy(seed=10)
        with batching(inner):
            assert current_policy() is inner
        assert current_policy() is policy
    assert current_policy() is None
    previous = install_policy(policy)
    assert previous is None
    assert install_policy(previous) is policy
    assert current_policy() is None


def test_thread_executor_rejects_batch_verify():
    with pytest.raises(ValueError, match="thread"):
        SessionPool(executor="thread", batch_verify=True)


# ---------------------------------------------------------------------------
# Voting integration: identical outputs, digest doctrine
# ---------------------------------------------------------------------------


def test_batched_election_outputs_and_digest_doctrine():
    plain = run_voting_trial(11, voters=4)
    silent = run_voting_trial(11, voters=4, batch=BatchPolicy(record_trace=False))
    pinned = run_voting_trial(11, voters=4, batch=BatchPolicy())
    again = run_voting_trial(11, voters=4, batch=BatchPolicy())
    assert silent.outputs == plain.outputs == pinned.outputs
    assert silent.rounds == plain.rounds and silent.messages == plain.messages
    # record_trace=False: byte-identical to per-item verification.
    assert silent.digest == plain.digest
    # record_trace=True: pinned apart from per-item runs, yet reproducible.
    assert pinned.digest != plain.digest
    assert pinned.digest == again.digest


def test_batched_election_records_batch_events():
    from repro.core.stacks import build_voting_stack

    with batching(BatchPolicy()):
        stack = build_voting_stack(voters=3, mode="hybrid", seed=5)
        for authority in stack.authorities.values():
            authority.deal()
        stack.run_rounds(1)
        for index in range(3):
            stack.parties[f"V{index}"].vote(("yes", "no")[index % 2])
        stack.run_until_result()
    events = [
        event for event in stack.session.log if event.kind == BATCH_EVENT_KIND
    ]
    assert events, "batched tally rounds must record verify.batch events"
    detail = events[0].detail
    assert "batched" in detail and "evaluations" in detail and "culprits" in detail


def test_forged_ballot_rejected_identically_batched_and_not():
    # An adversarial voting run must reach the same accept/reject decisions
    # whether the tally verifies per-item or batched.
    from repro.core.stacks import build_voting_stack

    results = []
    for policy in (None, BatchPolicy()):
        with batching(policy):
            stack = build_voting_stack(voters=3, mode="hybrid", seed=21)
            for authority in stack.authorities.values():
                authority.deal()
            stack.run_rounds(1)
            for index in range(3):
                stack.parties[f"V{index}"].vote("yes")
            stack.run_until_result()
        results.append(stack.results()["V0"])
    assert results[0] == results[1] == {"yes": 3, "no": 0}
