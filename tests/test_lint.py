"""The ``repro lint`` engine and rules: fixtures, suppression, CLI, meta.

Each rule gets positive / negative / suppressed fixture snippets run
through :func:`lint_source` under a scoping relpath; the CLI tests cover
``--json`` schema, rule selection and exit codes; the meta-test asserts
the shipped tree is clean (the invariant CI gates on); and the
minimal-install test proves the lint path never imports the
crypto/runtime stack or optional dependencies.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis.lint import (
    all_rules,
    get_rule,
    lint_paths,
    lint_source,
    parse_suppressions,
)
from repro.analysis.lint.cli import main as lint_main
from repro.analysis.lint.engine import PARSE_ERROR, default_root


def findings_for(source: str, relpath: str, rule_id: str = None):
    findings, suppressed = lint_source(textwrap.dedent(source), relpath)
    if rule_id is not None:
        findings = [f for f in findings if f.rule == rule_id]
    return findings, suppressed


def rule_ids(findings):
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# RPR001 digest-nondeterminism


def test_rpr001_flags_pre_rendered_record_detail():
    findings, _ = findings_for(
        """
        def observe(log, data):
            log.record(1, "tally", "F_sbc", detail=repr(data))
        """,
        "uc/somewhere.py",
    )
    assert rule_ids(findings) == ["RPR001"]
    assert "pre-rendered" in findings[0].message


def test_rpr001_flags_nondeterminism_in_detail():
    findings, _ = findings_for(
        """
        import time

        def observe(log):
            log.record(1, "tick", "clock", detail={"at": time.time()})
        """,
        "runtime/somewhere.py",
    )
    assert rule_ids(findings) == ["RPR001"]
    assert "time.time" in findings[0].message


def test_rpr001_flags_repr_encode_in_digest_path():
    findings, _ = findings_for(
        """
        def digest_of(payload):
            return repr(payload).encode()
        """,
        "analysis/somewhere.py",
    )
    assert rule_ids(findings) == ["RPR001"]


def test_rpr001_negative_structured_detail_and_canonical_encode():
    findings, _ = findings_for(
        """
        def observe(log, value, count):
            log.record(1, "tally", "F_sbc", detail=(value, count))

        def digest_of(payload):
            return canonical_detail(payload).encode()
        """,
        "uc/somewhere.py",
    )
    assert findings == []


def test_rpr001_suppressed():
    findings, suppressed = findings_for(
        """
        def observe(log, data):
            log.record(1, "t", "s", detail=repr(data))  # repro: allow[RPR001]
        """,
        "uc/somewhere.py",
    )
    assert findings == []
    assert [s.rule for s in suppressed] == ["RPR001"]


# ---------------------------------------------------------------------------
# RPR002 randomness-seam


RPR002_POSITIVE = """
def keygen(rng, q):
    return rng.randrange(1, q)
"""


def test_rpr002_flags_direct_rng_in_crypto():
    findings, _ = findings_for(RPR002_POSITIVE, "crypto/newprim.py")
    assert rule_ids(findings) == ["RPR002"]
    assert "current_source" in findings[0].message


def test_rpr002_negative_outside_crypto_scope():
    findings, _ = findings_for(RPR002_POSITIVE, "runtime/newprim.py")
    assert findings == []


def test_rpr002_negative_in_seam_modules():
    for exempt in ("crypto/randomness.py", "crypto/preprocessing.py"):
        findings, _ = findings_for(RPR002_POSITIVE, exempt)
        assert findings == [], exempt


def test_rpr002_negative_through_seam():
    findings, _ = findings_for(
        """
        def keygen(group, rng):
            return current_source().schnorr_nonce(group, rng)
        """,
        "crypto/newprim.py",
    )
    assert findings == []


def test_rpr002_suppressed():
    findings, suppressed = findings_for(
        """
        def keygen(rng, q):
            # repro: allow[RPR002] baseline primitive, not pool-backed
            return rng.randrange(1, q)
        """,
        "crypto/newprim.py",
    )
    assert findings == []
    assert [s.rule for s in suppressed] == ["RPR002"]


# ---------------------------------------------------------------------------
# RPR003 arith-normalization


def test_rpr003_flags_native_tainted_return():
    findings, _ = findings_for(
        """
        def chain(arith, values, p):
            acc = arith.to_native(1)
            for value in values:
                acc = acc * value % p
            return acc
        """,
        "crypto/fastpath.py",
    )
    assert rule_ids(findings) == ["RPR003"]
    assert "acc" in findings[0].message


def test_rpr003_flags_arith_expression_return():
    findings, _ = findings_for(
        """
        def square(arith, a, p):
            native = arith.to_native(a)
            return native * native % p
        """,
        "crypto/fastpath.py",
    )
    assert rule_ids(findings) == ["RPR003"]


def test_rpr003_negative_int_normalized():
    findings, _ = findings_for(
        """
        def chain(arith, values, p):
            acc = arith.to_native(1)
            for value in values:
                acc = acc * value % p
            return int(acc)
        """,
        "crypto/fastpath.py",
    )
    assert findings == []


def test_rpr003_negative_without_natives():
    findings, _ = findings_for(
        """
        def chain(values, p):
            acc = 1
            for value in values:
                acc = acc * value % p
            return acc
        """,
        "crypto/fastpath.py",
    )
    assert findings == []


def test_rpr003_suppressed():
    findings, suppressed = findings_for(
        """
        def chain(arith, values, p):
            acc = arith.to_native(1)
            return acc  # repro: allow[RPR003]
        """,
        "crypto/fastpath.py",
    )
    assert findings == []
    assert [s.rule for s in suppressed] == ["RPR003"]


# ---------------------------------------------------------------------------
# RPR004 lock-discipline


def test_rpr004_flags_unlocked_guarded_mutation():
    findings, _ = findings_for(
        """
        class SchnorrGroup:
            def warm(self):
                self._fb_state = (1, [])
        """,
        "crypto/groups.py",
    )
    assert rule_ids(findings) == ["RPR004"]
    assert "_accel_lock" in findings[0].message


def test_rpr004_flags_unlocked_object_setattr():
    findings, _ = findings_for(
        """
        class SchnorrGroup:
            def warm(self):
                object.__setattr__(self, "_fb_calls", 1)
        """,
        "crypto/groups.py",
    )
    assert rule_ids(findings) == ["RPR004"]


def test_rpr004_flags_replenisher_registry():
    findings, _ = findings_for(
        """
        class Replenisher:
            def disarm(self):
                self.armed = False
        """,
        "runtime/material.py",
    )
    assert rule_ids(findings) == ["RPR004"]
    assert "_lock" in findings[0].message


def test_rpr004_negative_under_lock_and_in_init():
    findings, _ = findings_for(
        """
        class SchnorrGroup:
            def __init__(self):
                self._fb_state = None

            def warm(self):
                with self._accel_lock:
                    self._fb_state = (1, [])
        """,
        "crypto/groups.py",
    )
    assert findings == []


def test_rpr004_negative_unregistered_class():
    findings, _ = findings_for(
        """
        class Other:
            def warm(self):
                self._fb_state = (1, [])
        """,
        "crypto/groups.py",
    )
    assert findings == []


def test_rpr004_suppressed():
    findings, suppressed = findings_for(
        """
        class SchnorrGroup:
            def warm(self):
                self._fb_calls += 1  # repro: allow[RPR004]
        """,
        "crypto/groups.py",
    )
    assert findings == []
    assert [s.rule for s in suppressed] == ["RPR004"]


# ---------------------------------------------------------------------------
# RPR005 worker-degradation


def test_rpr005_flags_bare_except_everywhere():
    findings, _ = findings_for(
        """
        def run(task):
            try:
                return task()
            except:
                return None
        """,
        "protocols/somewhere.py",
    )
    assert rule_ids(findings) == ["RPR005"]
    assert "bare" in findings[0].message


def test_rpr005_flags_silent_swallow_in_runtime():
    findings, _ = findings_for(
        """
        def attach(path):
            try:
                return path.read_bytes()
            except OSError:
                pass
        """,
        "runtime/material.py",
    )
    assert rule_ids(findings) == ["RPR005"]
    assert "OSError" in findings[0].message


def test_rpr005_negative_swallow_outside_runtime():
    findings, _ = findings_for(
        """
        def attach(path):
            try:
                return path.read_bytes()
            except OSError:
                pass
        """,
        "crypto/somewhere.py",
    )
    assert findings == []


def test_rpr005_negative_handler_that_warns():
    findings, _ = findings_for(
        """
        import warnings

        def attach(path):
            try:
                return path.read_bytes()
            except OSError as exc:
                warnings.warn(f"degraded: {exc}", RuntimeWarning)
                return None
        """,
        "runtime/material.py",
    )
    assert findings == []


def test_rpr005_suppressed():
    findings, suppressed = findings_for(
        """
        def attach(path):
            try:
                return path.read_bytes()
            # repro: allow[RPR005] cleanup on the re-raise path
            except OSError:
                pass
        """,
        "runtime/material.py",
    )
    assert findings == []
    assert [s.rule for s in suppressed] == ["RPR005"]


# ---------------------------------------------------------------------------
# RPR006 pickle-safety


def test_rpr006_flags_lambda_submission():
    findings, _ = findings_for(
        """
        def fan_out(pool, tasks):
            return pool.map(lambda task: task + 1, tasks)
        """,
        "runtime/sweep.py",
    )
    # The unbounded pool.map itself now also trips RPR007.
    assert sorted(rule_ids(findings)) == ["RPR006", "RPR007"]
    assert any("lambda" in finding.message for finding in findings)


def test_rpr006_flags_local_def_submission():
    findings, _ = findings_for(
        """
        def fan_out(executor, tasks):
            def runner(task):
                return task + 1
            return executor.submit(runner, tasks)
        """,
        "runtime/pool.py",
    )
    assert rule_ids(findings) == ["RPR006"]
    assert "runner" in findings[0].message


def test_rpr006_flags_lambda_initializer():
    findings, _ = findings_for(
        """
        def build(ctx, warm):
            return ctx.Pool(4, initializer=lambda: warm())
        """,
        "runtime/pool.py",
    )
    assert rule_ids(findings) == ["RPR006"]


def test_rpr006_negative_module_level_and_partial():
    findings, _ = findings_for(
        """
        import functools

        def fan_out(pool, runner, tasks, kwargs):
            bound = functools.partial(runner, **kwargs)
            return pool.map(bound, tasks, chunksize=4)
        """,
        "runtime/sweep.py",
    )
    # RPR007 flags the unbounded pool.map; RPR006 must stay quiet.
    assert rule_ids(findings) == ["RPR007"]


def test_rpr006_negative_thread_target_and_builtin_map():
    findings, _ = findings_for(
        """
        import threading

        def watch(check, tasks):
            def loop():
                check()
            thread = threading.Thread(target=loop, daemon=True)
            thread.start()
            return list(map(lambda t: t + 1, tasks))
        """,
        "runtime/material.py",
    )
    assert findings == []


def test_rpr006_negative_outside_runtime():
    findings, _ = findings_for(
        """
        def fan_out(pool, tasks):
            return pool.map(lambda task: task + 1, tasks)
        """,
        "analysis/somewhere.py",
    )
    assert findings == []


def test_rpr006_suppressed():
    findings, suppressed = findings_for(
        """
        def fan_out(pool, tasks):
            # repro: allow[RPR006, RPR007] inline executor only, never pickled
            return pool.map(lambda task: task + 1, tasks)
        """,
        "runtime/sweep.py",
    )
    assert findings == []
    assert sorted(s.rule for s in suppressed) == ["RPR006", "RPR007"]


# ---------------------------------------------------------------------------
# RPR007 worker-supervision


def test_rpr007_flags_unbounded_get_and_join():
    findings, _ = findings_for(
        """
        def wait(handle, worker_thread):
            payload = handle.get()
            worker_thread.join()
            return payload
        """,
        "runtime/supervisor.py",
    )
    assert rule_ids(findings) == ["RPR007", "RPR007"]
    assert "timeout" in findings[0].message


def test_rpr007_negative_bounded_waits_and_dict_get():
    findings, _ = findings_for(
        """
        def wait(handle, worker_thread, options):
            payload = handle.get(timeout=5.0)
            worker_thread.join(2.0)
            names = ", ".join(["a", "b"])
            return payload, options.get("key"), names
        """,
        "runtime/supervisor.py",
    )
    assert findings == []


def test_rpr007_negative_outside_runtime():
    findings, _ = findings_for(
        """
        def fan_out(pool, tasks, handle):
            handle.get()
            return pool.map(str, tasks)
        """,
        "analysis/report.py",
    )
    assert findings == []


def test_rpr007_ignores_non_worker_receivers():
    findings, _ = findings_for(
        """
        def plot(figure, series):
            return figure.map(str, series)
        """,
        "runtime/pool.py",
    )
    assert findings == []


def test_rpr007_flags_unbounded_asyncio_wait_for():
    findings, _ = findings_for(
        """
        import asyncio

        async def drain(queue):
            return await asyncio.wait_for(queue.get())
        """,
        "runtime/aio.py",
    )
    # Both the timeout-less wait_for and the bare queue.get() it wraps
    # fire: neither bounds the wait.
    assert rule_ids(findings) == ["RPR007", "RPR007"]
    assert any("wait_for" in finding.message for finding in findings)


def test_rpr007_flags_asyncio_timeout_none_and_wait():
    findings, _ = findings_for(
        """
        import asyncio

        async def drain(queue, tasks):
            token = await asyncio.wait_for(queue.get(), timeout=None)
            done, pending = await asyncio.wait(tasks)
            return token, done, pending
        """,
        "runtime/aio.py",
    )
    # timeout=None is no bound at all: the wait_for, the .get() under it,
    # and the bare asyncio.wait all fire.
    assert rule_ids(findings) == ["RPR007", "RPR007", "RPR007"]
    assert all("timeout" in finding.message for finding in findings)


def test_rpr007_negative_bounded_asyncio_waits():
    findings, _ = findings_for(
        """
        import asyncio

        STEP_TIMEOUT_S = 300.0

        async def drain(queue, done, clock, tasks):
            token = await asyncio.wait_for(queue.get(), timeout=STEP_TIMEOUT_S)
            err = await asyncio.wait_for(done.get(), timeout=300.0)
            tick = await asyncio.wait_for(clock.sleep(1), 5.0)
            ready, rest = await asyncio.wait(tasks, timeout=10.0)
            return token, err, tick, ready, rest
        """,
        "runtime/aio.py",
    )
    # A concrete timeout — keyword or positional — bounds the wait, and
    # a zero-arg queue .get() wrapped by a bounded wait_for is the
    # supervised mailbox idiom, not an unbounded worker wait.
    assert findings == []


def test_rpr007_bare_wait_for_import_counts_as_asyncio():
    findings, _ = findings_for(
        """
        from asyncio import wait_for

        async def drain(queue):
            bounded = await wait_for(queue.get(), timeout=1.0)
            unbounded = await wait_for(queue.get())
            return bounded, unbounded
        """,
        "runtime/aio.py",
    )
    # The bare-import spelling is the same primitive: the bounded call is
    # clean (including its wrapped .get()), the timeout-less one fires
    # twice (wait_for + bare .get()).
    assert rule_ids(findings) == ["RPR007", "RPR007"]


# ---------------------------------------------------------------------------
# suppression parsing


def test_parse_suppressions_same_line_and_above():
    source = textwrap.dedent(
        """
        x = 1  # repro: allow[RPR001]
        # repro: allow[RPR002, RPR003] reason text
        y = 2
        """
    )
    allowed = parse_suppressions(source)
    assert allowed[2] == {"RPR001"}
    assert allowed[4] == {"RPR002", "RPR003"}


def test_parse_suppressions_ignores_plain_comments():
    assert parse_suppressions("x = 1  # just a comment\n") == {}


def test_suppression_only_silences_named_rule():
    findings, suppressed = findings_for(
        """
        def fan_out(pool, tasks):
            return pool.map(lambda task: task + 1, tasks)  # repro: allow[RPR001]
        """,
        "runtime/sweep.py",
    )
    # RPR006/RPR007 still fire: the comment names a different rule.
    assert sorted(rule_ids(findings)) == ["RPR006", "RPR007"]
    assert suppressed == []


# ---------------------------------------------------------------------------
# engine behavior


def test_syntax_error_reports_parse_finding():
    findings, _ = lint_source("def broken(:\n", "runtime/x.py")
    assert [f.rule for f in findings] == [PARSE_ERROR]


def test_registry_has_the_seven_shipped_rules():
    ids = [rule.id for rule in all_rules()]
    assert ids == [
        "RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006", "RPR007",
    ]
    assert get_rule("RPR004").name == "lock-discipline"
    with pytest.raises(ValueError):
        get_rule("RPR999")


def test_findings_are_sorted_and_located():
    findings, _ = findings_for(
        """
        def late(pool, tasks):
            return pool.map(lambda t: t, tasks)

        def early(path):
            try:
                return path.read_bytes()
            except OSError:
                pass
        """,
        "runtime/x.py",
    )
    assert findings == sorted(findings, key=lambda f: f.sort_key)
    assert all(f.path == "runtime/x.py" and f.line > 0 and f.col > 0 for f in findings)


# ---------------------------------------------------------------------------
# CLI


def seed_violation(tmp_path: Path) -> Path:
    """A fixture tree with one RPR002 violation, as CI would catch it."""
    bad = tmp_path / "crypto" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def keygen(rng, q):\n    return rng.randrange(1, q)\n")
    return tmp_path


def test_cli_exits_nonzero_on_seeded_violation(tmp_path, capsys):
    root = seed_violation(tmp_path)
    assert lint_main([str(root)]) == 1
    out = capsys.readouterr().out
    assert "RPR002" in out and "crypto/bad.py:2" in out


def test_cli_json_schema(tmp_path, capsys):
    root = seed_violation(tmp_path)
    assert lint_main([str(root), "--json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["version"] == 1
    assert report["files"] == 1
    assert report["clean"] is False
    assert report["rules"] == [r.id for r in all_rules()]
    (finding,) = report["findings"]
    assert set(finding) == {"rule", "path", "line", "col", "message"}
    assert finding["rule"] == "RPR002"
    assert finding["path"] == "crypto/bad.py"
    assert report["suppressions"] == []


def test_cli_rule_selection(tmp_path, capsys):
    root = seed_violation(tmp_path)
    # Selecting an unrelated rule: the violation is invisible.
    assert lint_main([str(root), "--rule", "RPR005"]) == 0
    assert lint_main([str(root), "--select", "RPR002,RPR003"]) == 1
    assert lint_main([str(root), "--ignore", "RPR002"]) == 0
    capsys.readouterr()


def test_cli_usage_errors(tmp_path, capsys):
    assert lint_main(["--rule", "RPR999"]) == 2
    assert lint_main([str(tmp_path / "missing.py")]) == 2
    err = capsys.readouterr().err
    assert "RPR999" in err


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in all_rules():
        assert rule.id in out


# ---------------------------------------------------------------------------
# meta: the shipped tree is clean, and the lint path is dependency-minimal


def test_shipped_tree_is_clean():
    report = lint_paths()
    assert report.findings == [], [f.render() for f in report.findings]
    # The justified suppressions are part of the shipped contract: they
    # only ever shrink (a new one needs the same scrutiny as a fix).
    # PR 9 added three: the thread executor's map and the post-terminate
    # pool.join() (both provably bounded, RPR007), and the journal's
    # best-effort temp-file cleanup (RPR005).
    # PR 10 added four RPR005 waivers in runtime/aio.py: two
    # get_running_loop() probes where *no* loop is the happy path, the
    # closed-loop guard in VirtualClock.discard_pending, and the __del__
    # GC safety net — none is a degradation path worth a warning.
    assert len(report.suppressions) <= 21


def test_default_root_is_the_repro_package():
    root = default_root()
    assert root.name == "repro"
    assert (root / "analysis" / "lint" / "engine.py").is_file()


def test_lint_cli_runs_without_optional_deps_or_heavy_modules(tmp_path):
    """`repro lint` on a minimal install: no gmpy2/hypothesis, no crypto stack."""
    root = seed_violation(tmp_path)
    script = textwrap.dedent(
        f"""
        import sys

        class Blocker:
            BLOCKED = {{"gmpy2", "hypothesis"}}
            def find_spec(self, name, path=None, target=None):
                if name.split(".")[0] in self.BLOCKED:
                    raise ImportError("blocked optional dependency: " + name)

        sys.meta_path.insert(0, Blocker())
        from repro.cli import main

        rc = main(["lint", {str(root)!r}])
        assert rc == 1, rc
        heavy = [m for m in sys.modules
                 if m.startswith(("repro.crypto", "repro.runtime",
                                  "repro.core", "repro.uc", "repro.protocols"))]
        assert not heavy, heavy
        print("minimal-ok")
        """
    )
    result = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        check=False,
    )
    assert result.returncode == 0, result.stderr
    assert "minimal-ok" in result.stdout


def test_repro_package_lazy_exports_still_resolve():
    import repro

    assert callable(repro.build_sbc_stack)
    assert "build_sbc_stack" in dir(repro)
    with pytest.raises(AttributeError):
        _ = repro.not_a_symbol
