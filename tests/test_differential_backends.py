"""Cross-backend differential testing: every builder, every backend.

Each stack builder in :mod:`repro.core.stacks` runs one canonical script
under every registered backend.  The ``sequential`` run is the golden
reference: ``pooled`` and the event-driven ``async`` engine must match
it digest-for-digest (via the guarded
:func:`~repro.runtime.pool.compare_trace_digests`, so a vacuous
empty-vs-empty comparison can never slip through), and ``batched``
(trace-off) must reproduce its protocol outputs exactly.
"""

import pytest

from repro.core import (
    build_durs_stack,
    build_sbc_stack,
    build_tle_stack,
    build_voting_stack,
)
from repro.crypto.batch import BatchPolicy, batching
from repro.crypto.groups import (
    available_arith_backends,
    get_arith_backend,
    set_arith_backend,
)
from repro.runtime import (
    TraceDigestUnavailable,
    available_backends,
    compare_trace_digests,
    trace_digest,
)

BACKENDS = sorted(available_backends())


def _drive_sbc(backend, mode="hybrid", **params):
    stack = build_sbc_stack(n=4, mode=mode, seed=11, backend=backend, **params)
    stack.parties["P0"].broadcast(b"diff-a")
    stack.parties["P1"].broadcast(b"diff-b")
    stack.run_until_delivery()
    return stack.session, stack.delivered()


def _drive_sbc_hybrid(backend):
    return _drive_sbc(backend, mode="hybrid", phi=4, delta=2)


def _drive_sbc_composed(backend):
    # Corollary 1 minima: the composed TLE advantage needs Φ > 3, ∆ ≥ 3.
    return _drive_sbc(backend, mode="composed")


def _drive_tle(backend):
    stack = build_tle_stack(n=3, mode="hybrid", seed=12, backend=backend)
    stack.enc("P0", b"diff-secret", 8)
    stack.run_rounds(8)
    triples = stack.parties["P0"].retrieve()
    outputs = {"triples": [(m, t) for m, _c, t in triples]}
    _m, ciphertext, _t = triples[0]
    outputs["dec"] = {
        pid: stack.dec(pid, ciphertext, 8) for pid in ("P0", "P1", "P2")
    }
    return stack.session, outputs


def _drive_durs(backend):
    stack = build_durs_stack(n=4, mode="hybrid", seed=13, backend=backend)
    for pid in stack.parties:
        stack.parties[pid].urs_request()
    stack.run_until_urs()
    return stack.session, stack.urs_values()


def _drive_voting(backend):
    stack = build_voting_stack(voters=3, mode="hybrid", seed=14, backend=backend)
    for authority in stack.authorities.values():
        authority.deal()
    stack.run_rounds(1)
    for index, candidate in enumerate(("yes", "no", "yes")):
        stack.parties[f"V{index}"].vote(candidate)
    stack.run_until_result()
    return stack.session, stack.results()


DRIVERS = {
    "sbc-hybrid": _drive_sbc_hybrid,
    "sbc-composed": _drive_sbc_composed,
    "tle-hybrid": _drive_tle,
    "durs-hybrid": _drive_durs,
    "voting-hybrid": _drive_voting,
}


@pytest.fixture(scope="module")
def golden():
    """Sequential reference run per builder: (digest, outputs)."""
    results = {}
    for name, driver in DRIVERS.items():
        session, outputs = driver("sequential")
        results[name] = (trace_digest(session.log), outputs)
    return results


@pytest.mark.parametrize("name", sorted(DRIVERS))
def test_pooled_matches_sequential_golden(name, golden):
    reference_digest, reference_outputs = golden[name]
    session, outputs = DRIVERS[name]("pooled")
    assert compare_trace_digests(trace_digest(session.log), reference_digest)
    assert outputs == reference_outputs


@pytest.mark.parametrize("name", sorted(DRIVERS))
def test_async_matches_sequential_golden(name, golden):
    """The asyncio engine's core contract: byte-identical event traces.

    The async driver executes rounds as awaited virtual-clock steps, but
    the conductor sequences them strictly — so every builder's canonical
    script must digest-equal the sequential reference, seed for seed.
    """
    reference_digest, reference_outputs = golden[name]
    session, outputs = DRIVERS[name]("async")
    assert compare_trace_digests(trace_digest(session.log), reference_digest)
    assert outputs == reference_outputs


@pytest.mark.parametrize("name", sorted(DRIVERS))
def test_batched_matches_sequential_outputs(name, golden):
    reference_digest, reference_outputs = golden[name]
    session, outputs = DRIVERS[name]("batched")
    assert outputs == reference_outputs
    # The trace is off: the digest comparison must refuse, not pass.
    assert trace_digest(session.log) == ""
    second_session, _ = DRIVERS[name]("batched")
    with pytest.raises(TraceDigestUnavailable):
        compare_trace_digests(
            trace_digest(session.log), trace_digest(second_session.log)
        )


def test_every_registered_backend_is_covered():
    """New backends must be added to this differential suite knowingly."""
    assert BACKENDS == ["async", "batched", "pooled", "sequential"], (
        "a backend was registered without extending the differential tests"
    )


# ---------------------------------------------------------------------------
# Orthogonal seams: arithmetic tier and batch verification must be
# digest-invariant against the same golden references.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("arith", available_arith_backends())
@pytest.mark.parametrize("name", sorted(DRIVERS))
def test_arith_backends_reproduce_golden_digests(name, arith, golden):
    """Every arithmetic tier must be byte-invisible in traces and outputs."""
    reference_digest, reference_outputs = golden[name]
    before = get_arith_backend().name
    set_arith_backend(arith)
    try:
        session, outputs = DRIVERS[name]("sequential")
    finally:
        set_arith_backend(before)
    assert compare_trace_digests(trace_digest(session.log), reference_digest)
    assert outputs == reference_outputs


@pytest.mark.parametrize("name", sorted(DRIVERS))
def test_batched_verification_reproduces_golden_digests(name, golden):
    """A silent batching policy (record_trace=False) is digest-neutral.

    Verification routes through one RLC multi-exp per round instead of
    per-item checks, yet the trace and outputs stay byte-identical to the
    per-item golden run — the correctness contract that lets ``verify()``
    cross-check batched sweeps against inline references.
    """
    reference_digest, reference_outputs = golden[name]
    with batching(BatchPolicy(record_trace=False)):
        session, outputs = DRIVERS[name]("sequential")
    assert compare_trace_digests(trace_digest(session.log), reference_digest)
    assert outputs == reference_outputs
