"""ΠFBC over ΠUBC (real unfair broadcast below the fair layer)."""

from repro.core.stacks import build_fbc_fixture
from repro.functionalities.dummy import DummyBroadcastParty
from repro.uc.environment import Environment
from repro.uc.session import Session

from tests.conftest import broadcast_action


def _world(seed=1, n=3, q=4):
    session = Session(seed=seed)
    fixture = build_fbc_fixture(session, q=q, real_ubc=True)
    parties = {}
    for i in range(n):
        party = DummyBroadcastParty(session, f"P{i}", fixture.fbc)
        fixture.fbc.attach(party)
        parties[f"P{i}"] = party
    return session, fixture, parties, Environment(session)


def test_delivery_still_two_rounds():
    session, fixture, parties, env = _world()
    env.run_round([("P0", broadcast_action(b"m"))])
    env.run_rounds(1)
    assert parties["P1"].outputs == []
    env.run_rounds(1)
    assert parties["P1"].outputs == [("Broadcast", b"m")]


def test_matches_fbc_over_ideal_ubc():
    """Substituting ΠUBC for FUBC below ΠFBC changes nothing observable."""
    results = []
    for real_ubc in (False, True):
        session = Session(seed=33)
        fixture = build_fbc_fixture(session, q=4, real_ubc=real_ubc)
        parties = {}
        for i in range(3):
            party = DummyBroadcastParty(session, f"P{i}", fixture.fbc)
            fixture.fbc.attach(party)
            parties[f"P{i}"] = party
        env = Environment(session)
        env.run_round(
            [("P0", broadcast_action(b"x")), ("P2", broadcast_action(b"y"))]
        )
        env.run_rounds(3)
        results.append({pid: tuple(p.outputs) for pid, p in parties.items()})
    assert results[0] == results[1]


def test_frbc_instances_created_per_message():
    session, fixture, parties, env = _world()
    env.run_round(
        [("P0", broadcast_action(b"a")), ("P1", broadcast_action(b"b"))]
    )
    env.run_rounds(2)
    frbc_count = sum(
        1 for fid in session.functionalities if fid.startswith("FRBC:PiUBC")
    )
    assert frbc_count == 2
    assert len(parties["P2"].outputs) == 2
