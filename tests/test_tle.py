"""Time-lock encryption (Figure 7 / Figure 12, Theorem 1).

Covers the ideal FTLE decision tree, the ΠTLE realization in hybrid and
composed worlds, the delay/leak parameters of Theorem 1, and the
cross-party decryption that ΠSBC depends on.
"""

import pytest

from repro.core import build_tle_stack
from repro.functionalities.dummy import DummyTLEParty
from repro.functionalities.tle import (
    BOTTOM,
    INVALID_TIME,
    MORE_TIME,
    TimeLockEncryption,
)
from repro.uc.environment import Environment
from repro.uc.session import Session

ALL_MODES = ("ideal", "hybrid", "composed")


# -- ideal functionality -------------------------------------------------------


def _ideal(n=2, leak=None, delay=1, seed=1):
    session = Session(seed=seed)
    tle = TimeLockEncryption(session, leak=leak, delay=delay)
    parties = {f"P{i}": DummyTLEParty(session, f"P{i}", tle) for i in range(n)}
    return session, tle, parties, Environment(session)


def test_negative_tau_rejected():
    _s, tle, parties, _e = _ideal()
    assert tle.enc(parties["P0"], b"m", -1) == BOTTOM


def test_retrieve_respects_delay():
    _s, tle, parties, env = _ideal(delay=2)
    tle.enc(parties["P0"], b"m", 5)
    assert tle.retrieve(parties["P0"]) == []
    env.run_rounds(1)
    assert tle.retrieve(parties["P0"]) == []
    env.run_rounds(1)
    triples = tle.retrieve(parties["P0"])
    assert len(triples) == 1
    assert triples[0][0] == b"m" and triples[0][2] == 5


def test_retrieve_is_per_owner():
    _s, tle, parties, env = _ideal(delay=0)
    tle.enc(parties["P0"], b"m", 5)
    assert tle.retrieve(parties["P1"]) == []


def test_dec_before_tau_says_more_time():
    _s, tle, parties, env = _ideal(delay=0)
    tle.enc(parties["P0"], b"m", 3)
    (_m, c, _t) = tle.retrieve(parties["P0"])[0]
    assert tle.dec(parties["P1"], c, 3) == MORE_TIME
    env.run_rounds(3)
    assert tle.dec(parties["P1"], c, 3) == b"m"


def test_dec_wrong_tau_invalid_time():
    _s, tle, parties, env = _ideal(delay=0)
    tle.enc(parties["P0"], b"m", 3)
    (_m, c, _t) = tle.retrieve(parties["P0"])[0]
    env.run_rounds(3)
    # Asking with τ=1 < τdec=3 while Cl >= τdec: Invalid_Time.
    assert tle.dec(parties["P1"], c, 1) == INVALID_TIME


def test_dec_unknown_ciphertext_bottom():
    _s, tle, parties, env = _ideal(delay=0)
    env.run_rounds(1)
    assert tle.dec(parties["P0"], b"garbage-ciphertext", 0) == BOTTOM


def test_leakage_horizon():
    """Leakage exposes exactly the plaintexts with τ ≤ leak(Cl)."""
    _s, tle, parties, env = _ideal(leak=lambda cl: cl + 1, delay=0)
    tle.enc(parties["P0"], b"near", 1)
    tle.enc(parties["P0"], b"far", 10)
    leaked = {m for m, _c, _t in tle.adv_leakage()}
    assert leaked == {b"near"}  # τ=1 ≤ leak(0)=1; τ=10 not
    env.run_rounds(9)
    leaked = {m for m, _c, _t in tle.adv_leakage()}
    assert leaked == {b"near", b"far"}


def test_leakage_includes_corrupted_owners():
    session, tle, parties, env = _ideal(leak=lambda cl: cl, delay=0)
    tle.enc(parties["P0"], b"owned", 100)
    session.corrupt("P0")
    leaked = {m for m, _c, _t in tle.adv_leakage()}
    assert b"owned" in leaked


def test_conflicting_records_yield_bottom():
    _s, tle, parties, env = _ideal(delay=0)
    tle.adv_insert([(b"c", b"m1", 0), (b"c", b"m2", 0)])
    assert tle.dec(parties["P0"], b"c", 0) == BOTTOM


# -- ΠTLE across modes ------------------------------------------------------------


@pytest.mark.parametrize("mode", ALL_MODES)
def test_roundtrip_across_modes(mode):
    stack = build_tle_stack(n=3, mode=mode, seed=5)
    stack.enc("P0", b"secret", 8)
    stack.run_rounds(8)
    triples = stack.parties["P0"].retrieve()
    assert [(m, t) for m, _c, t in triples] == [(b"secret", 8)]
    _m, c, _t = triples[0]
    # every party can decrypt, not just the encryptor:
    for pid in ("P0", "P1", "P2"):
        assert stack.parties[pid].dec(c, 8) == b"secret"


@pytest.mark.parametrize("mode", ("hybrid", "composed"))
def test_dec_too_early_across_modes(mode):
    stack = build_tle_stack(n=2, mode=mode, seed=5)
    stack.enc("P0", b"secret", 9)
    stack.run_rounds(5)
    triples = stack.parties["P0"].retrieve()
    assert triples
    _m, c, _t = triples[0]
    assert stack.parties["P1"].dec(c, 9) == MORE_TIME


@pytest.mark.parametrize("mode", ("hybrid", "composed"))
def test_retrieve_delay_is_delta_plus_one(mode):
    """Theorem 1: delay = Δ + 1."""
    stack = build_tle_stack(n=2, mode=mode, seed=5)
    delta = stack.tle.delta
    stack.enc("P0", b"m", 20)
    stack.run_rounds(delta)  # Δ rounds: not yet
    assert stack.parties["P0"].retrieve() == []
    stack.run_rounds(1)  # Δ + 1: there
    assert len(stack.parties["P0"].retrieve()) == 1


def test_multiple_concurrent_encryptions():
    stack = build_tle_stack(n=3, mode="hybrid", seed=6)
    stack.enc("P0", b"a", 8)
    stack.enc("P1", b"b", 9)
    stack.run_rounds(2)
    stack.enc("P2", b"c", 10)
    stack.run_rounds(8)
    for pid, expected, tau in (("P0", b"a", 8), ("P1", b"b", 9), ("P2", b"c", 10)):
        (_m, c, _t) = stack.parties[pid].retrieve()[0]
        assert stack.parties["P0"].dec(c, tau) == expected


def test_negative_tau_rejected_across_modes():
    for mode in ALL_MODES:
        stack = build_tle_stack(n=2, mode=mode, seed=1)
        assert stack.enc("P0", b"m", -2) == BOTTOM
