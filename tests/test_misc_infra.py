"""Small-surface infrastructure: metrics summary, trace rendering, misc."""

from repro.functionalities.ubc import UnfairBroadcast
from repro.uc.entity import Party
from repro.uc.metrics import Metrics
from repro.uc.session import Session
from repro.uc.trace import EventLog


def test_metrics_summary_filters_prefixes():
    metrics = Metrics()
    metrics.inc("messages.total", 3)
    metrics.inc("ro.total", 2)
    metrics.inc("internal.debug", 9)
    summary = metrics.summary()
    assert "messages.total" in summary
    assert "ro.total" in summary
    assert "internal.debug" not in summary


def test_metrics_count_message_with_size():
    metrics = Metrics()
    metrics.count_message("chan", size_bits=128)
    assert metrics.get("messages.bits") == 128
    assert metrics.get("messages.chan") == 1


def test_event_str_rendering():
    log = EventLog()
    event = log.record(3, "leak", "FUBC", ("Broadcast",))
    text = str(event)
    assert "t=3" in text and "leak" in text and "FUBC" in text


def test_event_log_iteration_and_len():
    log = EventLog()
    log.record(0, "a", "x")
    log.record(1, "b", "y")
    assert len(log) == 2
    assert [e.kind for e in log] == ["a", "b"]


def test_event_log_predicate_filter():
    log = EventLog()
    log.record(0, "tick", "P0")
    log.record(5, "tick", "P1")
    late = log.filter(kind="tick", predicate=lambda e: e.time > 2)
    assert [e.source for e in late] == ["P1"]


def test_event_log_first_last_missing():
    log = EventLog()
    assert log.first("nothing") is None
    assert log.last("nothing") is None


def test_session_random_bytes_zero():
    assert Session(seed=1).random_bytes(0) == b""


def test_party_repr():
    session = Session(seed=1)
    party = Party(session, "P0")
    assert "P0" in repr(party)


def test_ubc_adv_allow_unknown_tag_noop(session):
    ubc = UnfairBroadcast(session)
    ubc.adv_allow(b"no-such-tag", b"whatever")  # silently ignored


def test_ubc_adapter_allow_unknown_tag_noop(session):
    from repro.protocols.ubc_protocol import UBCProtocolAdapter

    adapter = UBCProtocolAdapter(session)
    adapter.adv_allow(b"no-such-fid", b"whatever")  # silently ignored


def test_functionality_require_corrupted(session):
    from repro.uc.entity import Functionality
    from repro.uc.errors import CorruptionError

    import pytest

    Party(session, "P0")
    f = Functionality(session, "F")
    with pytest.raises(CorruptionError):
        f.require_corrupted("P0")
    session.corrupt("P0")
    f.require_corrupted("P0")  # no raise


def test_deliver_all_exclusion(session):
    from repro.uc.entity import Functionality

    received = []

    class Probe(Party):
        def on_deliver(self, message, source):
            received.append(self.pid)

    Probe(session, "P0")
    Probe(session, "P1")
    f = Functionality(session, "F")
    f.deliver_all(("x",), exclude=["P0"])
    assert received == ["P1"]
