"""Preprocessing store tests: offline build, online attach, corruption.

The store's contract, end to end:

* the offline phase is deterministic and round-trips through a
  versioned, integrity-hashed blob;
* the online phase attaches value-identical tables, so seed-for-seed
  trace digests never depend on the material source
  (compute == disk == shared);
* every corruption (truncated, garbage, bit-flipped) degrades to
  compute with a warning — it never crashes a worker, and never changes
  results;
* the spend-ledger sidecar inherits the same posture: a truncated,
  garbage or stale sidecar degrades consume-forward planning to
  conservative sampling with a warning, never a crashed worker, and
  sweeps stay ``--verify``-clean throughout.
"""

import json
import os
import pathlib
import threading

import pytest

from repro.crypto.groups import GROUP_2048, TEST_GROUP, SchnorrGroup
from repro.crypto.preprocessing import (
    MaterialError,
    MaterialFormatError,
    MaterialIntegrityError,
    build_material,
    deserialize_material,
    extend_material,
    group_fingerprint,
    serialize_material,
)
from repro.crypto.shamir import Share, _evaluate, feldman_verify
from repro.runtime import ParallelSweep, SessionPool, run_voting_trial
from repro.runtime.material import (
    MaterialHandle,
    MaterialRef,
    MaterialStore,
    OnlinePlan,
    publish_material,
    resolve_material_source,
    warm_with_material,
)

PARAMS = dict(n=3, mode="hybrid", phi=4, delta=2)
VOTING = dict(runner=run_voting_trial, voters=3)


def _fresh_group() -> SchnorrGroup:
    return SchnorrGroup(p=TEST_GROUP.p, q=TEST_GROUP.q, g=TEST_GROUP.g)


@pytest.fixture
def store(tmp_path, monkeypatch):
    """An isolated store that both this process and forked workers see."""
    monkeypatch.setenv("REPRO_MATERIAL_DIR", str(tmp_path))
    return MaterialStore(tmp_path)


# ---------------------------------------------------------------------------
# Offline phase: build + serialization round-trip
# ---------------------------------------------------------------------------


def test_fingerprint_stable_and_parameter_bound():
    assert group_fingerprint(TEST_GROUP) == group_fingerprint(_fresh_group())
    assert group_fingerprint(TEST_GROUP) != group_fingerprint(GROUP_2048)
    assert len(group_fingerprint(TEST_GROUP)) == 16


def test_build_is_deterministic_in_seed():
    one = build_material(TEST_GROUP, nonces=4, feldman=2, seed=7)
    two = build_material(TEST_GROUP, nonces=4, feldman=2, seed=7)
    other = build_material(TEST_GROUP, nonces=4, feldman=2, seed=8)
    assert serialize_material(one) == serialize_material(two)
    assert serialize_material(one) != serialize_material(other)


def test_serialization_roundtrip():
    material = build_material(TEST_GROUP, nonces=6, feldman=3, feldman_threshold=2)
    clone = deserialize_material(serialize_material(material))
    assert clone.fb_table == material.fb_table
    assert clone.fb_window == material.fb_window
    assert clone.nonces == material.nonces
    assert clone.feldman == material.feldman
    assert clone.fingerprint == material.fingerprint
    assert clone.fb_table_bytes == material.fb_table_bytes > 0


def test_nonce_pool_is_valid_and_exhausts():
    material = build_material(TEST_GROUP, nonces=3, feldman=0)
    for _ in range(3):
        pair = material.draw_nonce()
        assert pow(TEST_GROUP.g, pair.k, TEST_GROUP.p) == pair.r
    with pytest.raises(MaterialError, match="exhausted"):
        material.draw_nonce()


def test_feldman_entries_verify_against_their_commitments():
    material = build_material(TEST_GROUP, nonces=0, feldman=2, feldman_threshold=2)
    for entry in material.iter_feldman():
        assert entry.threshold == 2
        for x in (1, 2, 3):
            share = Share(x=x, y=_evaluate(entry.coefficients, x, TEST_GROUP.q))
            assert feldman_verify(TEST_GROUP, share, entry.commitment)


def test_attach_installs_the_exact_table():
    material = build_material(TEST_GROUP, nonces=0, feldman=0)
    group = _fresh_group()
    material.attach(group)
    assert group._fb_table == material.fb_table
    assert group.power_of_g(98765) == pow(group.g, 98765, group.p)
    assert group.fb_table_bytes == material.fb_table_bytes


def test_attach_refuses_foreign_parameters():
    material = build_material(TEST_GROUP, nonces=0, feldman=0)
    with pytest.raises(MaterialError, match="does not match"):
        material.attach(GROUP_2048)


def test_extend_material_appends_without_touching_the_prefix():
    base = build_material(TEST_GROUP, nonces=6, feldman=3, seed=7)
    grown = extend_material(base, nonces=4, feldman=2)
    assert grown.fingerprint == base.fingerprint
    assert grown.built_with_seed == base.built_with_seed
    assert grown.fb_table == base.fb_table
    # Append-only: the original draws survive byte-for-byte, so every
    # in-flight plan keeps verifying against the same prefix.
    assert grown.nonces[:6] == base.nonces
    assert grown.feldman[:3] == base.feldman
    assert len(grown.nonces) == 10 and len(grown.feldman) == 5
    # The appended entries are real: nonce pairs satisfy r = g^k and
    # Feldman rows verify against their own commitments.
    for pair in grown.nonces[6:]:
        assert pow(TEST_GROUP.g, pair.k, TEST_GROUP.p) == pair.r
    for entry in grown.feldman[3:]:
        share = Share(x=1, y=_evaluate(entry.coefficients, 1, TEST_GROUP.q))
        assert feldman_verify(TEST_GROUP, share, entry.commitment)


def test_extend_material_is_deterministic_and_composable():
    base = build_material(TEST_GROUP, nonces=4, feldman=2, seed=3)
    once = extend_material(base, nonces=6, feldman=2)
    again = extend_material(base, nonces=6, feldman=2)
    assert serialize_material(once) == serialize_material(again)
    # Two small extensions and one big one diverge (the stream is keyed
    # on current pool sizes), but both stay prefix-compatible.
    stepped = extend_material(extend_material(base, nonces=3), nonces=3)
    assert stepped.nonces[:4] == base.nonces
    assert len(stepped.nonces) == 10


def test_extend_material_validates_inputs():
    base = build_material(TEST_GROUP, nonces=2, feldman=1, feldman_threshold=2)
    assert extend_material(base) is base  # 0/0 is a no-op
    with pytest.raises(ValueError, match=">= 0"):
        extend_material(base, nonces=-1)
    with pytest.raises(ValueError, match="threshold"):
        extend_material(base, feldman=1, feldman_threshold=3)


@pytest.mark.parametrize(
    "mangle, error",
    [
        (lambda blob: blob[: len(blob) // 2], MaterialIntegrityError),
        (lambda blob: b"garbage, not material at all", MaterialFormatError),
        (lambda blob: blob[:100] + bytes([blob[100] ^ 0xFF]) + blob[101:],
         MaterialIntegrityError),
        (lambda blob: b"", MaterialFormatError),
    ],
    ids=["truncated", "garbage", "bitflip", "empty"],
)
def test_deserialize_rejects_corrupt_blobs(mangle, error):
    blob = serialize_material(build_material(TEST_GROUP, nonces=2, feldman=1))
    with pytest.raises(error):
        deserialize_material(mangle(blob))


# ---------------------------------------------------------------------------
# Store: atomic persistence, lazy build, repair
# ---------------------------------------------------------------------------


def test_store_save_load_inspect_clear(store):
    material = build_material(TEST_GROUP, nonces=4, feldman=2)
    path = store.save(material)
    assert path.name == f"{material.fingerprint}.v1"
    assert not list(store.root.glob("*.tmp"))  # atomic write left no temp
    loaded = store.load(TEST_GROUP)
    assert loaded.fb_table == material.fb_table
    records = store.inspect()
    assert len(records) == 1 and records[0]["ok"]
    assert records[0]["fb_table_bytes"] == material.fb_table_bytes
    assert store.clear() == 1
    assert store.inspect() == []


def test_store_ensure_builds_on_miss_and_repairs_corruption(store):
    assert not store.path_for(TEST_GROUP).exists()
    built = store.ensure(TEST_GROUP, nonces=2, feldman=1)
    assert store.path_for(TEST_GROUP).exists()
    store.path_for(TEST_GROUP).write_bytes(b"RPM1 corrupted beyond repair")
    with pytest.warns(RuntimeWarning, match="rebuilding"):
        repaired = store.ensure(TEST_GROUP, nonces=2, feldman=1)
    assert repaired.fb_table == built.fb_table
    assert store.load(TEST_GROUP).fb_table == built.fb_table


def test_resolve_material_source_validates():
    assert resolve_material_source(None) == "compute"
    assert resolve_material_source("shared") == "shared"
    with pytest.raises(ValueError, match="material source"):
        resolve_material_source("telepathy")
    with pytest.raises(ValueError, match="material source"):
        SessionPool(material="telepathy", **PARAMS)


# ---------------------------------------------------------------------------
# Publish/attach: shared memory with mmap and compute fallbacks
# ---------------------------------------------------------------------------


def test_publish_shared_creates_and_releases_segments(store):
    handle, release = publish_material("shared", store=store)
    try:
        assert handle is not None and handle.source == "shared"
        assert len(handle.refs) == 1
        ref = handle.refs[0]
        assert ref.fingerprint == group_fingerprint(TEST_GROUP)
        assert ref.shm_name and ref.path
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(name=ref.shm_name)
        try:
            material = deserialize_material(bytes(segment.buf[: ref.nbytes]))
            assert material.matches(TEST_GROUP)
        finally:
            segment.close()
    finally:
        release()
    from multiprocessing import shared_memory

    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=handle.refs[0].shm_name)


def test_publish_compute_is_a_noop():
    handle, release = publish_material("compute")
    assert handle is None
    release()


def _corrupt_file(path: pathlib.Path, kind: str) -> None:
    blob = path.read_bytes()
    if kind == "truncated":
        path.write_bytes(blob[: len(blob) // 3])
    elif kind == "garbage":
        path.write_bytes(b"this is not preprocessing material")
    else:  # integrity-mismatch: flip one body byte, keep magic + length
        index = len(blob) - 17
        path.write_bytes(blob[:index] + bytes([blob[index] ^ 0x01]) + blob[index + 1 :])


@pytest.mark.parametrize("kind", ["truncated", "garbage", "integrity-mismatch"])
@pytest.mark.parametrize("source", ["disk", "shared"])
def test_worker_attach_falls_back_to_compute_on_corruption(
    store, source, kind
):
    """A corrupt blob behind a published ref warns and computes instead."""
    store.build([TEST_GROUP], nonces=2, feldman=1)
    path = store.path_for(TEST_GROUP)
    _corrupt_file(path, kind)
    if source == "disk":
        handle = MaterialHandle(
            source="disk",
            refs=(
                MaterialRef(
                    fingerprint=group_fingerprint(TEST_GROUP),
                    nbytes=path.stat().st_size,
                    path=str(path),
                ),
            ),
        )
        with pytest.warns(RuntimeWarning, match="falling back"):
            warm_with_material(handle)
    else:
        from multiprocessing import shared_memory

        blob = path.read_bytes()
        segment = shared_memory.SharedMemory(
            name=f"repro-test-{os.getpid()}-{kind}", create=True, size=max(len(blob), 1)
        )
        try:
            segment.buf[: len(blob)] = blob
            handle = MaterialHandle(
                source="shared",
                refs=(
                    MaterialRef(
                        fingerprint=group_fingerprint(TEST_GROUP),
                        nbytes=len(blob),
                        shm_name=segment.name,
                    ),
                ),
            )
            with pytest.warns(RuntimeWarning, match="falling back"):
                warm_with_material(handle)
        finally:
            segment.close()
            segment.unlink()
    # The fallback still leaves the process fully warmed and correct.
    assert TEST_GROUP._fb_table is not None
    assert TEST_GROUP.power_of_g(4242) == pow(TEST_GROUP.g, 4242, TEST_GROUP.p)


@pytest.mark.parametrize("kind", ["truncated", "garbage", "integrity-mismatch"])
def test_corrupt_store_never_crashes_a_sweep(store, kind):
    """End to end: corrupt cache + process workers still match inline."""
    store.build([TEST_GROUP], nonces=2, feldman=1)
    _corrupt_file(store.path_for(TEST_GROUP), kind)
    sweep = ParallelSweep(
        executor="process", workers=2, chunksize=1, material="disk", **PARAMS
    )
    with pytest.warns(RuntimeWarning):
        verdict = sweep.verify(range(3))
    assert verdict.matched


def test_missing_store_lazily_runs_the_offline_phase(store):
    assert not store.path_for(TEST_GROUP).exists()
    report = SessionPool(
        executor="process", workers=2, material="shared", **PARAMS
    ).run(range(3))
    assert report.material_source == "shared"
    assert store.path_for(TEST_GROUP).exists()  # publish persisted the build


def test_unknown_fingerprint_is_ignored_with_a_warning():
    handle = MaterialHandle(
        source="disk",
        refs=(MaterialRef(fingerprint="feedfacecafebeef", nbytes=1, path="/none"),),
    )
    with pytest.warns(RuntimeWarning, match="no known group"):
        warm_with_material(handle)


# ---------------------------------------------------------------------------
# Spend ledger: adversarial sidecars
# ---------------------------------------------------------------------------


def _sidecar_for(store: MaterialStore, fingerprint: str) -> pathlib.Path:
    return store.root / f"{fingerprint}{store.SUFFIX}.spent"


def _mangle_sidecar(path: pathlib.Path, kind: str) -> None:
    if kind == "truncated":
        # A torn write: valid JSON prefix, cut mid-object.
        path.write_text('{"nonces_spent": 12, "nonce_hi')
    elif kind == "garbage":
        path.write_text("not json at all \x00\x7f")
    elif kind == "negative":
        path.write_text(json.dumps({"nonces_spent": -3, "feldman_spent": 1}))
    else:  # non-object
        path.write_text("[1, 2, 3]")


def test_ledger_parses_missing_corrupt_and_legacy_sidecars(store):
    fingerprint = group_fingerprint(TEST_GROUP)
    clean = store.ledger(fingerprint)
    assert clean.ok and clean.nonces_spent == 0 and clean.nonce_high == 0

    path = _sidecar_for(store, fingerprint)
    for kind in ("truncated", "garbage", "negative", "non-object"):
        _mangle_sidecar(path, kind)
        ledger = store.ledger(fingerprint)
        assert not ledger.ok, kind
        assert "corrupt" in ledger.note, kind
        # The flat-dict view reads corrupt as zeros (back-compat), but
        # never invents spends.
        assert store.spent(fingerprint)["nonces_spent"] == 0

    # Pre-consume-forward sidecars carry only the sums; the high marks
    # are inferred from them (legacy sweeps spent contiguous prefixes).
    path.write_text(json.dumps({"nonces_spent": 5, "feldman_spent": 2}))
    legacy = store.ledger(fingerprint)
    assert legacy.ok
    assert legacy.nonce_high == 5 and legacy.feldman_high == 2


def test_record_spend_self_heals_a_corrupt_sidecar(store):
    fingerprint = group_fingerprint(TEST_GROUP)
    path = _sidecar_for(store, fingerprint)
    _mangle_sidecar(path, "garbage")
    assert not store.ledger(fingerprint).ok
    store.record_spend(fingerprint, nonces=4, nonce_high=16, material_seed=0)
    healed = store.ledger(fingerprint)
    assert healed.ok
    # Replaced wholesale: the unparseable numbers are gone, not merged.
    assert healed.nonces_spent == 4 and healed.nonce_high == 16
    assert healed.material_seed == 0


def test_record_spend_replaces_a_stale_seed_ledger_wholesale(store):
    fingerprint = group_fingerprint(TEST_GROUP)
    store.record_spend(fingerprint, nonces=50, nonce_high=50, material_seed=7)
    # A record against a different build seed drops the old counters:
    # they index into pools that no longer exist.
    store.record_spend(fingerprint, nonces=3, nonce_high=8, material_seed=8)
    ledger = store.ledger(fingerprint)
    assert ledger.nonces_spent == 3 and ledger.nonce_high == 8
    assert ledger.material_seed == 8


@pytest.mark.parametrize("kind", ["truncated", "garbage"])
def test_corrupt_sidecar_degrades_to_sampling_and_still_verifies(store, kind):
    """Consume-forward planning over an unreadable ledger must assume the
    whole pool is spent: every draw samples (counted, warned), no slice is
    re-spent, and the sweep still passes seed-for-seed ``--verify``."""
    store.build([TEST_GROUP], nonces=32, feldman=8)
    _mangle_sidecar(_sidecar_for(store, group_fingerprint(TEST_GROUP)), kind)
    sweep = ParallelSweep(
        executor="inline", material="disk", online=True, consume_forward=True,
        **VOTING,
    )
    with pytest.warns(RuntimeWarning, match="unusable"):
        verdict = sweep.verify(range(2))
    assert verdict.matched
    spend = verdict.report.online_spend
    assert spend["nonces_spent"] == 0
    assert spend["nonces_sampled"] > 0


def test_stale_seed_sidecar_degrades_to_sampling_and_still_verifies(store):
    """A ledger recorded against a different build seed is as untrustworthy
    as a corrupt one: conservative sampling, warning, verify still holds."""
    store.build([TEST_GROUP], nonces=32, feldman=8)
    store.record_spend(
        group_fingerprint(TEST_GROUP), nonces=4, nonce_high=4, material_seed=99
    )
    sweep = ParallelSweep(
        executor="inline", material="disk", online=True, consume_forward=True,
        **VOTING,
    )
    with pytest.warns(RuntimeWarning, match="stale"):
        verdict = sweep.verify(range(2))
    assert verdict.matched
    spend = verdict.report.online_spend
    assert spend["nonces_spent"] == 0
    assert spend["nonces_sampled"] > 0


def test_crash_between_reserve_and_run_never_double_spends(store):
    """Consume-forward reserves the plan's slices at *plan* time, so a
    worker crashing before any trial records a spend still leaves the
    slices marked: the next plan takes fresh ones."""
    store.build([TEST_GROUP], nonces=64, feldman=16)
    crashed = OnlinePlan.for_tasks([0, 1], store=store, consume_forward=True)
    # The crashed sweep never runs; its reservation is already durable.
    resumed = OnlinePlan.for_tasks([0, 1], store=store, consume_forward=True)
    assert resumed.nonce_offset >= crashed.nonce_offset + crashed.required_pools()["nonces"]
    first, _ = crashed.ranges_for(0)
    second, _ = resumed.ranges_for(0)
    assert first[1] <= second[0], "resumed plan re-spends the crashed slice"


def test_concurrent_ledger_writers_never_tear_the_sidecar(store):
    """record_spend holds an advisory file lock across its
    read-merge-write cycle, so racing writers lose nothing: sums add up
    exactly, highs max-merge exactly — and the sidecar always parses
    afterwards: no torn files, no leftover temp files."""
    fingerprint = group_fingerprint(TEST_GROUP)
    start = threading.Barrier(8)

    def writer(index: int) -> None:
        start.wait()
        for _ in range(10):
            store.record_spend(
                fingerprint, nonces=1, nonce_high=index + 1, material_seed=0
            )

    threads = [threading.Thread(target=writer, args=(i,)) for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    ledger = store.ledger(fingerprint)
    assert ledger.ok, ledger.note
    assert ledger.nonce_high == 8  # max of all writers, never lost
    assert ledger.nonces_spent == 80  # every increment survives the race
    assert not list(store.root.glob("*.tmp"))


# ---------------------------------------------------------------------------
# Acceptance: digests are material-source-invariant
# ---------------------------------------------------------------------------


def test_digests_identical_across_material_sources_32_tasks(store):
    """compute == disk == shared, seed for seed, over a 32-task sweep."""
    seeds = range(32)
    inline = SessionPool(executor="inline", **PARAMS).run(seeds)
    digests = {"compute": [r.digest for r in inline.results]}
    for source in ("compute", "disk", "shared"):
        report = SessionPool(
            executor="process", workers=2, material=source, **PARAMS
        ).run(seeds)
        digests[f"process-{source}"] = [r.digest for r in report.results]
    reference = digests["compute"]
    assert all(values == reference for values in digests.values())
    assert len(set(reference)) == len(reference)  # distinct seeds, not vacuous


def test_scenario_smoke_subset_digests_across_sources(store):
    from repro.scenarios import default_matrix, run_matrix

    specs = [
        spec for spec in default_matrix().expand()
        if spec.stack == "ubc" and spec.backend == "sequential"
    ][:4]
    assert len(specs) >= 2
    reference = run_matrix(specs, executor="inline")
    for source in ("disk", "shared"):
        fanned = run_matrix(
            specs, executor="process", workers=2, material=source, adaptive=True
        )
        assert [cell.digest for cell in fanned.cells] == [
            cell.digest for cell in reference.cells
        ]
        assert fanned.ok


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_material_build_inspect_clear(store, capsys):
    from repro.cli import main

    assert main(["material", "build", "--nonces", "4", "--feldman", "2"]) == 0
    out = capsys.readouterr().out
    assert "built 2 material sets" in out
    assert group_fingerprint(TEST_GROUP) in out
    assert group_fingerprint(GROUP_2048) in out

    assert main(["material", "inspect"]) == 0
    assert "fb_table_bytes" in capsys.readouterr().out

    assert main(["material", "clear"]) == 0
    assert "removed 2 material file(s)" in capsys.readouterr().out
    assert main(["material", "inspect"]) == 0
    assert "is empty" in capsys.readouterr().out


def test_cli_material_inspect_flags_corruption(store, capsys):
    from repro.cli import main

    store.build([TEST_GROUP], nonces=2, feldman=1)
    _corrupt_file(store.path_for(TEST_GROUP), "garbage")
    assert main(["material", "inspect", "--json"]) == 1
    assert '"ok": false' in capsys.readouterr().out


def test_cli_sweep_json_reports_plan_and_material(store, capsys):
    import json

    from repro.cli import main

    code = main([
        "sweep", "--sessions", "6", "--executor", "process", "--workers", "2",
        "--chunksize", "1", "--material", "shared", "--adaptive",
        "--verify", "--json",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["digests_match"] is True
    assert payload["plan"]["material_source"] == "shared"
    assert payload["plan"]["adaptive"] is True
    assert payload["plan"]["adaptivity"], "adaptivity trace missing from plan"
    assert payload["report"]["material_source"] == "shared"


def test_vanished_segment_falls_back_to_mmap_of_the_store_file(store):
    """The documented shared-memory fallback: mmap the on-disk blob."""
    store.build([TEST_GROUP], nonces=2, feldman=1)
    path = store.path_for(TEST_GROUP)
    handle = MaterialHandle(
        source="shared",
        refs=(
            MaterialRef(
                fingerprint=group_fingerprint(TEST_GROUP),
                nbytes=path.stat().st_size,
                shm_name="repro-definitely-not-a-segment",
                path=str(path),
            ),
        ),
    )
    warm_with_material(handle)  # no warning: the mmap fallback succeeds
    assert TEST_GROUP.power_of_g(777) == pow(TEST_GROUP.g, 777, TEST_GROUP.p)


def test_material_groups_plumbs_production_parameters_to_workers(store):
    """GROUP_2048 material reaches process workers when asked for."""
    report = SessionPool(
        executor="process", workers=1, material="shared",
        material_groups=(TEST_GROUP, GROUP_2048), **PARAMS
    ).run(range(2))
    assert report.material_source == "shared"
    # The lazy offline phase persisted material for both parameter sets.
    assert store.path_for(TEST_GROUP).exists()
    assert store.path_for(GROUP_2048).exists()


def test_warmup_off_never_publishes_or_claims_material(store):
    """warmup=False measures cold workers: nothing to publish or attach."""
    report = SessionPool(
        executor="process", workers=1, warmup=False, material="shared", **PARAMS
    ).run(range(2))
    assert report.material_source == "compute"  # nothing was attached
    assert not store.path_for(TEST_GROUP).exists()  # no offline build ran
