"""FRO: consistency, independence, programmability and its limits."""

import pytest

from repro.functionalities.random_oracle import ProgrammingConflict, RandomOracle


def test_consistent_responses(session):
    ro = RandomOracle(session)
    assert ro.query(b"x") == ro.query(b"x")


def test_distinct_points_distinct_responses(session):
    ro = RandomOracle(session)
    # 32-byte uniform outputs collide with negligible probability.
    assert ro.query(b"x") != ro.query(b"y")


def test_distinct_oracles_independent(session):
    ro1 = RandomOracle(session, fid="FRO1")
    ro2 = RandomOracle(session, fid="FRO2")
    assert ro1.query(b"x") != ro2.query(b"x")


def test_digest_size_parameter(session):
    ro = RandomOracle(session, fid="wide", digest_size=128)
    assert len(ro.query(b"x")) == 128


def test_non_bytes_rejected(session):
    ro = RandomOracle(session)
    with pytest.raises(TypeError):
        ro.query("string")


def test_query_attribution(session):
    ro = RandomOracle(session)
    ro.query(b"x", querier="P0")
    assert ro.was_queried(b"x")
    assert ro.was_queried(b"x", by="P0")
    assert not ro.was_queried(b"x", by="P1")
    assert not ro.was_queried(b"y")


def test_programming_unqueried_point(session):
    ro = RandomOracle(session)
    ro.program(b"p", bytes(32))
    assert ro.query(b"p") == bytes(32)


def test_programming_queried_point_conflicts(session):
    """The simulation-abort event: equivocation after the adversary queried."""
    ro = RandomOracle(session)
    ro.query(b"p", querier="A")
    with pytest.raises(ProgrammingConflict):
        ro.program(b"p", bytes(32))


def test_programming_twice_same_value_ok(session):
    ro = RandomOracle(session)
    ro.program(b"p", bytes(32))
    ro.program(b"p", bytes(32))


def test_programming_twice_different_value_conflicts(session):
    ro = RandomOracle(session)
    ro.program(b"p", bytes(32))
    with pytest.raises(ProgrammingConflict):
        ro.program(b"p", b"\x01" * 32)


def test_programming_wrong_size_rejected(session):
    ro = RandomOracle(session)
    with pytest.raises(ValueError):
        ro.program(b"p", b"short")


def test_hash_fn_closure(session):
    ro = RandomOracle(session)
    h = ro.hash_fn(querier="P7")
    assert h(b"z") == ro.query(b"z")
    assert ro.was_queried(b"z", by="P7")


def test_metrics_count_queries(session):
    ro = RandomOracle(session)
    ro.query(b"a", querier="P0")
    ro.query(b"b", querier="P0")
    assert session.metrics.get("ro.total") == 2
    assert session.metrics.get("ro.by.P0") == 2
