"""Fault-tolerant sweep runtime: supervisor, chaos harness, journal, resume.

The robustness contract (PR 9), end to end:

* every worker failure mode — SIGKILL, raised exception, hang — ends in
  a retry, a pool respawn, a bisection or a quarantine entry, never a
  stalled or crashed sweep;
* retried tasks replay the same seed, so a chaos-disturbed sweep stays
  **digest-equal** to the undisturbed run (recovery is
  ``--verify``-checkable);
* a repeatedly-failing chunk is bisected down to the poison task, which
  is quarantined with a ``task.quarantined`` event — an honest partial
  report instead of a crash;
* the :class:`~repro.runtime.supervisor.SweepJournal` records completed
  chunks crash-safely, and ``resume`` restores them without re-running
  journaled work or double-spending consume-forward material.
"""

import json
import os
import pathlib
import warnings

import pytest

from repro.crypto.groups import TEST_GROUP
from repro.runtime import (
    CHAOS_FOREVER,
    ChaosFault,
    ChaosInjected,
    ChaosPlan,
    DeadlinePolicy,
    MaterialStore,
    ParallelSweep,
    RetryPolicy,
    SessionPool,
    SweepJournal,
    reports_match,
    run_sbc_trial,
    run_voting_trial,
)
from repro.runtime.supervisor import (
    plan_from_record,
    plan_to_record,
    run_chunk,
    trial_result_from_record,
    trial_result_to_record,
)

PARAMS = dict(n=3, mode="hybrid", phi=4, delta=2, senders=1)
#: Fast-failing policies so chaos tests converge in seconds, not minutes.
FAST_RETRY = RetryPolicy(max_attempts=2, backoff_base_s=0.01, backoff_max_s=0.02)
FAST_DEADLINE = DeadlinePolicy(cap_s=2.0)

#: Directory (via env, so forked workers see it) where the marker runner
#: below records which seeds actually executed.
MARKER_ENV = "REPRO_TEST_SUPERVISOR_MARKS"


def marked_sbc_trial(seed, **kwargs):
    """``run_sbc_trial`` that leaves a per-seed marker file on execution.

    Module-level (picklable) so resume tests can prove journaled seeds
    were *not* re-executed, not just that the report looks right.
    """
    mark_dir = os.environ.get(MARKER_ENV)
    if mark_dir:
        pathlib.Path(mark_dir, f"seed-{seed}").touch()
    return run_sbc_trial(seed, **kwargs)


@pytest.fixture
def store(tmp_path, monkeypatch):
    """An isolated material store that forked workers inherit via env."""
    monkeypatch.setenv("REPRO_MATERIAL_DIR", str(tmp_path))
    return MaterialStore(tmp_path)


# ---------------------------------------------------------------------------
# Policies and chaos-plan parsing


def test_retry_policy_backoff_progression_and_cap():
    policy = RetryPolicy(backoff_base_s=0.1, backoff_factor=2.0, backoff_max_s=0.3)
    assert policy.delay_s(1) == pytest.approx(0.1)
    assert policy.delay_s(2) == pytest.approx(0.2)
    assert policy.delay_s(3) == pytest.approx(0.3)  # capped
    assert policy.delay_s(9) == pytest.approx(0.3)


def test_retry_policy_validates():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_factor=0.5)


def test_deadline_floor_factor_cap_and_escalation():
    policy = DeadlinePolicy(factor=10.0, floor_s=5.0, escalation=2.0)
    # Floor dominates small chunks; factor * est * tasks dominates big ones.
    assert policy.deadline_s(0.01, 4) == pytest.approx(5.0)
    assert policy.deadline_s(1.0, 4) == pytest.approx(40.0)
    # No observation yet: the initial estimate stands in.
    assert policy.deadline_s(None, 4) == pytest.approx(40.0)
    # Retries escalate, so a merely-slow chunk isn't killed twice.
    assert policy.deadline_s(1.0, 4, attempt=2) == pytest.approx(160.0)
    capped = DeadlinePolicy(factor=10.0, floor_s=5.0, cap_s=2.0)
    assert capped.deadline_s(1.0, 4) == pytest.approx(2.0)
    assert capped.deadline_s(1.0, 4, attempt=1) == pytest.approx(4.0)
    with pytest.raises(ValueError):
        DeadlinePolicy(cap_s=0.0)


def test_chaos_plan_parses_spec_grammar():
    plan = ChaosPlan.parse("kill@3,exc@7:2,hang@1:*", hang_s=5.0)
    by_task = {fault.task: fault for fault in plan.faults}
    assert by_task[3].kind == "kill" and by_task[3].repeat == 1
    assert by_task[7].kind == "exc" and by_task[7].repeat == 2
    assert by_task[1].kind == "hang" and by_task[1].repeat == CHAOS_FOREVER
    assert by_task[1].hang_s == 5.0
    assert plan.fault_for(3) is by_task[3]
    assert plan.fault_for(99) is None


@pytest.mark.parametrize("spec", ["", "boom@1", "kill@x", "kill", "kill@1:0"])
def test_chaos_plan_rejects_malformed_specs(spec):
    with pytest.raises(ValueError):
        ChaosPlan.parse(spec)


def test_chaos_fault_validates():
    with pytest.raises(ValueError):
        ChaosFault(task=1, kind="segfault")
    with pytest.raises(ValueError):
        ChaosFault(task=1, kind="hang", hang_s=-1.0)


def test_run_chunk_inline_clean_and_injected_exception():
    assert run_chunk(lambda t: t * 2, [1, 2, 3]) == [2, 4, 6]
    with pytest.raises(ChaosInjected):
        run_chunk(lambda t: t, [1, 2], faults={2: ("exc", 0.0)})


# ---------------------------------------------------------------------------
# Record round trips


def test_trial_result_record_round_trip():
    result = run_sbc_trial(7, trace="full", **PARAMS)
    record = trial_result_to_record(result)
    json.dumps(record)  # journal-safe by construction
    assert trial_result_from_record(record) == result


def test_online_plan_record_round_trip(store):
    from repro.runtime.material import OnlinePlan

    store.build([TEST_GROUP], nonces=64, feldman=16)
    plan = OnlinePlan.for_tasks(range(3))
    restored = plan_from_record(json.loads(json.dumps(plan_to_record(plan))))
    assert restored == plan


# ---------------------------------------------------------------------------
# SweepJournal


def test_journal_round_trip_and_quarantine_omission(tmp_path):
    journal = SweepJournal(tmp_path / "sweep.journal")
    results = [run_sbc_trial(seed, trace="full", **PARAMS) for seed in (0, 1)]
    journal.begin({"tasks": [0, 1, 2]}, plan_record=None)
    # A quarantined (None) result is omitted, so its task re-runs on resume.
    journal.append_chunk([0, 1, 2], [results[0], results[1], None])
    header, records = SweepJournal(journal.path).load()
    assert header["schema"] == SweepJournal.SCHEMA
    assert header["config"] == {"tasks": [0, 1, 2]}
    assert len(records) == 1 and records[0]["tasks"] == [0, 1]
    assert SweepJournal(journal.path).completed() == {
        0: results[0], 1: results[1],
    }


def test_journal_append_requires_header(tmp_path):
    journal = SweepJournal(tmp_path / "sweep.journal")
    with pytest.raises(RuntimeError, match="no header"):
        journal.append_chunk([0], [run_sbc_trial(0, **PARAMS)])


def test_journal_load_tolerates_torn_tail(tmp_path):
    journal = SweepJournal(tmp_path / "sweep.journal")
    journal.begin({"tasks": [0, 1]})
    journal.append_chunk([0], [run_sbc_trial(0, trace="full", **PARAMS)])
    journal.append_chunk([1], [run_sbc_trial(1, trace="full", **PARAMS)])
    lines = journal.path.read_text().splitlines()
    # A torn final line (crash mid-copy): valid prefix survives, tail is
    # discarded with a warning — those chunks just re-run.
    journal.path.write_text("\n".join(lines[:2]) + "\n" + lines[2][: len(lines[2]) // 2])
    with pytest.warns(RuntimeWarning, match="corrupt"):
        _, records = SweepJournal(journal.path).load()
    assert [record["tasks"] for record in records] == [[0]]


def test_journal_load_rejects_missing_or_corrupt_header(tmp_path):
    with pytest.raises(FileNotFoundError):
        SweepJournal(tmp_path / "absent.journal").load()
    bad = tmp_path / "bad.journal"
    bad.write_text('{"kind": "not-a-header"}\n')
    with pytest.raises(ValueError, match="cannot resume"):
        SweepJournal(bad).load()


# ---------------------------------------------------------------------------
# Supervised executor configuration


def test_supervision_kwargs_require_process_executor():
    with pytest.raises(ValueError, match="process"):
        SessionPool(executor="inline", chaos="kill@1", **PARAMS)
    with pytest.raises(ValueError, match="process"):
        SessionPool(executor="thread", retry=FAST_RETRY, **PARAMS)


def test_resume_requires_a_journal():
    with pytest.raises(ValueError, match="journal"):
        SessionPool(executor="process", resume=True, **PARAMS)


def test_inline_report_has_no_supervision_block():
    report = SessionPool(executor="inline", **PARAMS).run(range(2))
    assert report.supervision is None
    assert "retries" not in report.summary()


# ---------------------------------------------------------------------------
# Chaos recovery (the --verify-checkable acceptance contract)


def test_sigkilled_worker_mid_sweep_stays_digest_equal():
    """ISSUE 9 acceptance: SIGKILL a worker mid-run; the supervisor
    respawns the pool, replays the lost chunk with the same seed, and
    the report is digest-equal to the undisturbed run."""
    undisturbed = SessionPool(
        executor="process", workers=2, chunksize=2, trace="full", **PARAMS
    ).run(range(6))
    chaotic = SessionPool(
        executor="process", workers=2, chunksize=2, trace="full",
        chaos="kill@2", retry=FAST_RETRY, deadline=FAST_DEADLINE, **PARAMS
    ).run(range(6))
    assert reports_match(undisturbed, chaotic)
    assert chaotic.supervision["respawns"] >= 1
    assert chaotic.summary()["respawns"] >= 1
    assert any(
        event["kind"] == "pool.respawn"
        for event in chaotic.supervision["events"]
    )


def test_injected_exception_retries_clean_and_digest_equal():
    undisturbed = SessionPool(
        executor="process", workers=2, chunksize=2, trace="full", **PARAMS
    ).run(range(4))
    chaotic = SessionPool(
        executor="process", workers=2, chunksize=2, trace="full",
        chaos="exc@1", retry=FAST_RETRY, **PARAMS
    ).run(range(4))
    assert reports_match(undisturbed, chaotic)
    assert chaotic.supervision["retries"] >= 1
    assert chaotic.supervision["respawns"] == 0  # pool stayed healthy


def test_hung_worker_trips_deadline_and_recovers():
    chaotic = SessionPool(
        executor="process", workers=2, chunksize=2, trace="full",
        chaos=ChaosPlan.parse("hang@0", hang_s=30.0),
        retry=FAST_RETRY, deadline=FAST_DEADLINE, **PARAMS
    ).run(range(4))
    reference = SessionPool(
        executor="process", workers=2, chunksize=2, trace="full", **PARAMS
    ).run(range(4))
    assert reports_match(reference, chaotic)
    assert chaotic.supervision["respawns"] >= 1


def test_chaos_sweep_verifies_against_inline_reference():
    verdict = ParallelSweep(
        executor="process", workers=2, chunksize=2, trace="full",
        chaos="kill@3", retry=FAST_RETRY, deadline=FAST_DEADLINE, **PARAMS
    ).verify(range(6))
    assert verdict.matched


def test_persistent_fault_bisects_to_poison_task_and_quarantines():
    """A task that fails on *every* dispatch can't be retried away: the
    chunk is bisected down to it and the sweep completes without it —
    the honest partial report."""
    chaos = ChaosPlan(faults=(ChaosFault(task=2, kind="exc", repeat=CHAOS_FOREVER),))
    report = SessionPool(
        executor="process", workers=2, chunksize=4, trace="full",
        chaos=chaos, retry=FAST_RETRY, **PARAMS
    ).run(range(4))
    # Seed 2 is gone from the results; everything else completed.
    assert [result.seed for result in report.results] == [0, 1, 3]
    assert report.summary()["quarantined"] == 1
    assert report.supervision["quarantined_tasks"] == [2]
    events = [event["kind"] for event in report.supervision["events"]]
    assert "chunk.bisect" in events
    assert "task.quarantined" in events
    # The survivors are still digest-equal to their inline runs.
    inline = {
        seed: run_sbc_trial(seed, trace="full", **PARAMS) for seed in (0, 1, 3)
    }
    for result in report.results:
        assert result.digest == inline[result.seed].digest


# ---------------------------------------------------------------------------
# Journal + resume (crash the coordinator, pick up where it left off)


def test_resume_skips_journaled_chunks_without_reexecution(tmp_path, monkeypatch):
    """ISSUE 9 acceptance: kill the coordinator between journal writes;
    --resume completes the sweep, and the marker files prove the
    journaled seeds were never re-executed."""
    marks = tmp_path / "marks"
    marks.mkdir()
    monkeypatch.setenv(MARKER_ENV, str(marks))
    journal_path = tmp_path / "sweep.journal"
    kwargs = dict(
        runner=marked_sbc_trial, executor="process", workers=2,
        chunksize=2, trace="full", **PARAMS
    )
    full = SessionPool(journal=journal_path, **kwargs).run(range(6))
    assert sorted(marks.iterdir(), key=lambda p: p.name) == [
        marks / f"seed-{seed}" for seed in range(6)
    ]
    # Simulate the coordinator dying after the first chunk's append: the
    # journal is truncated to header + first chunk (atomic rewrites mean
    # a real crash leaves exactly such a prefix).
    lines = journal_path.read_text().splitlines()
    journal_path.write_text("\n".join(lines[:2]) + "\n")
    for mark in marks.iterdir():
        mark.unlink()
    resumed = SessionPool(journal=journal_path, resume=True, **kwargs).run(range(6))
    executed = sorted(int(p.name.split("-")[1]) for p in marks.iterdir())
    assert executed == [2, 3, 4, 5]  # chunk (0, 1) came from the journal
    assert resumed.resumed == 2
    assert resumed.summary()["resumed"] == 2
    assert reports_match(full, resumed)


def test_resume_refuses_a_mismatched_journal(tmp_path):
    journal_path = tmp_path / "sweep.journal"
    SessionPool(
        executor="process", workers=2, chunksize=2, trace="full",
        journal=journal_path, **PARAMS
    ).run(range(4))
    other = dict(PARAMS, n=4)
    with pytest.raises(ValueError, match="different sweep configuration"):
        SessionPool(
            executor="process", workers=2, chunksize=2, trace="full",
            journal=journal_path, resume=True, **other
        ).run(range(4))


def test_consume_forward_resume_does_not_double_spend(store, tmp_path):
    """Resume replays the journaled OnlinePlan verbatim: the ledger's
    high-water marks don't advance again, and spend sums grow only by
    the freshly-executed trials."""
    store.build([TEST_GROUP], nonces=256, feldman=64)
    journal_path = tmp_path / "online.journal"
    kwargs = dict(
        runner=run_voting_trial, voters=3, executor="process", workers=2,
        chunksize=2, material="disk", online=True, consume_forward=True,
        trace="full",
    )
    first = SessionPool(journal=journal_path, **kwargs).run(range(4))
    plan = first.online_plan
    ledger_after_first = store.ledger(plan.fingerprint)
    lines = journal_path.read_text().splitlines()
    journal_path.write_text("\n".join(lines[:2]) + "\n")
    resumed = SessionPool(journal=journal_path, resume=True, **kwargs).run(range(4))
    assert reports_match(first, resumed)
    # The plan was restored, not re-reserved: same absolute offsets.
    assert resumed.online_plan == plan
    assert resumed.resumed == 2
    ledger_after_resume = store.ledger(plan.fingerprint)
    # High marks unchanged — resume reserved nothing new.
    assert ledger_after_resume.nonce_high == ledger_after_first.nonce_high
    assert ledger_after_resume.feldman_high == ledger_after_first.feldman_high
    # Sums grew only by the two freshly-executed trials' consumption.
    fresh_spend = sum(
        result.online["nonces_spent"]
        for result in resumed.results
        if result.seed in (2, 3)
    )
    assert (
        ledger_after_resume.nonces_spent
        == ledger_after_first.nonces_spent + fresh_spend
    )


def test_journal_append_failure_degrades_with_warning(tmp_path):
    """A journal that stops being writable mid-sweep must not kill the
    sweep: the append warns and the run completes (resume just re-runs
    more chunks)."""

    class ExplodingJournal(SweepJournal):
        def append_chunk(self, tasks, results):
            raise OSError("disk full")

    journal = ExplodingJournal(tmp_path / "sweep.journal")
    journal.begin({"tasks": [0, 1]})
    from repro.runtime.supervisor import Supervisor

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        with Supervisor(workers=2, on_chunk=journal.append_chunk) as supervisor:
            results = supervisor.map(_sbc, [0, 1], 1)
    assert len(results) == 2
    assert any("journal append failed" in str(w.message) for w in caught)


def _sbc(seed):
    """Module-level (picklable) trace-full trial for direct Supervisor use."""
    return run_sbc_trial(seed, trace="full", **PARAMS)
