"""FRBC (Figure 6): single-shot relaxed broadcast semantics."""

from repro.functionalities.rbc import RelaxedBroadcast
from repro.uc.entity import Party


class Collector(Party):
    def __init__(self, session, pid):
        super().__init__(session, pid)
        self.received = []

    def on_deliver(self, message, source):
        self.received.append(message)


def _setup(session, n=3):
    parties = [Collector(session, f"P{i}") for i in range(n)]
    rbc = RelaxedBroadcast(session, fid="FRBC")
    return parties, rbc


def test_delivery_on_sender_tick(session):
    parties, rbc = _setup(session)
    rbc.broadcast(parties[0], b"hello")
    assert parties[1].received == []  # not yet delivered
    rbc.on_party_tick(parties[0])
    for party in parties:
        assert party.received == [("Broadcast", b"hello", "P0")]
    assert rbc.halted


def test_leak_precedes_delivery(session):
    parties, rbc = _setup(session)
    rbc.broadcast(parties[0], b"hello")
    assert ("FRBC", ("Broadcast", b"hello", "P0")) in session.adversary.observed


def test_single_message_only(session):
    parties, rbc = _setup(session)
    rbc.broadcast(parties[0], b"first")
    rbc.broadcast(parties[1], b"second")  # ignored: sender already fixed
    rbc.on_party_tick(parties[0])
    assert parties[2].received == [("Broadcast", b"first", "P0")]


def test_adv_broadcast_immediate(session):
    parties, rbc = _setup(session)
    session.corrupt("P0")
    rbc.adv_broadcast("P0", b"evil")
    for party in parties[1:]:
        assert party.received == [("Broadcast", b"evil", "P0")]


def test_allow_ignored_while_sender_honest(session):
    parties, rbc = _setup(session)
    rbc.broadcast(parties[0], b"original")
    rbc.adv_allow(b"replacement")  # sender honest: no effect
    rbc.on_party_tick(parties[0])
    assert parties[1].received == [("Broadcast", b"original", "P0")]


def test_allow_replaces_after_corruption(session):
    """The non-atomic replacement FRBC permits (relaxed validity)."""
    parties, rbc = _setup(session)
    rbc.broadcast(parties[0], b"original")
    session.corrupt("P0")
    rbc.adv_allow(b"replacement")
    assert parties[1].received == [("Broadcast", b"replacement", "P0")]
    # The instance is spent: the original can no longer surface.
    rbc.on_party_tick(parties[0])
    assert len(parties[1].received) == 1


def test_agreement_all_receive_same(session):
    parties, rbc = _setup(session, n=5)
    rbc.broadcast(parties[2], ("structured", 42))
    rbc.on_party_tick(parties[2])
    views = {tuple(party.received[0]) for party in parties}
    assert len(views) == 1


def test_non_sender_tick_is_noop(session):
    parties, rbc = _setup(session)
    rbc.broadcast(parties[0], b"m")
    rbc.on_party_tick(parties[1])
    assert parties[1].received == []
