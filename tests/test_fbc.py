"""Fair broadcast (Figure 10 / Figure 11, Lemma 2).

Covers: ideal F∆,α_FBC timing and locking; ΠFBC delivery at exactly Δ=2;
the advantage α=2 (adversary can read at the send round via
Output_Request on the ideal object; computationally via its own budget on
the real one); hybrid/ideal output equality.
"""

import pytest

from repro.attacks.adaptive import FBCReplaceAttack, OutputRequestProbe
from repro.core.stacks import build_fbc_fixture
from repro.functionalities.dummy import DummyBroadcastParty
from repro.functionalities.fbc import FairBroadcast
from repro.uc.environment import Environment
from repro.uc.session import Session

from tests.conftest import broadcast_action


def _ideal_world(delta=2, alpha=2, n=3, seed=1, adversary=None):
    session = Session(seed=seed, adversary=adversary)
    fbc = FairBroadcast(session, delta=delta, alpha=alpha)
    parties = {
        f"P{i}": DummyBroadcastParty(session, f"P{i}", fbc) for i in range(n)
    }
    return session, fbc, parties, Environment(session)


def _real_world(n=3, seed=1, q=4, adversary=None):
    session = Session(seed=seed, adversary=adversary)
    fixture = build_fbc_fixture(session, q=q)
    parties = {}
    for i in range(n):
        party = DummyBroadcastParty(session, f"P{i}", fixture.fbc)
        fixture.fbc.attach(party)
        parties[f"P{i}"] = party
    return session, fixture, parties, Environment(session)


# -- ideal functionality ------------------------------------------------------


def test_ideal_delivery_after_exactly_delta_rounds():
    session, fbc, parties, env = _ideal_world(delta=3, alpha=1)
    env.run_round([("P0", broadcast_action(b"m"))])
    env.run_rounds(1)
    assert parties["P1"].outputs == []
    env.run_rounds(2)
    assert parties["P1"].outputs == [("Broadcast", b"m")]


def test_ideal_leak_hides_message():
    session, fbc, parties, env = _ideal_world()
    fbc.broadcast(parties["P0"], b"secret")
    for _fid, detail in session.adversary.observed:
        assert b"secret" not in repr(detail).encode()


def test_ideal_batch_sorted_lexicographically():
    session, fbc, parties, env = _ideal_world()
    env.run_round(
        [("P0", broadcast_action(b"zebra")), ("P1", broadcast_action(b"apple"))]
    )
    env.run_rounds(2)
    assert [m for _, m in parties["P2"].outputs] == [b"apple", b"zebra"]


def test_ideal_invalid_parameters():
    session = Session(seed=0)
    with pytest.raises(ValueError):
        FairBroadcast(session, delta=1, alpha=2)


def test_output_request_reveals_at_delta_minus_alpha():
    """The simulator advantage is exactly α: reveal age = Δ − α."""
    probe = OutputRequestProbe()
    session, fbc, parties, env = _ideal_world(delta=3, alpha=2, adversary=probe)
    env.run_round([("P0", broadcast_action(b"m"))])
    env.run_rounds(4)
    assert probe.reveal_ages == [3 - 2]


def test_replacement_before_lock_succeeds():
    attack = FBCReplaceAttack(victim="P0", replacement=b"evil", corrupt_after=0)
    session, fbc, parties, env = _ideal_world(delta=3, alpha=1, adversary=attack)
    env.run_round([("P0", broadcast_action(b"good"))])
    env.run_rounds(4)
    assert attack.successes == attack.attempts == 1
    assert [m for _, m in parties["P1"].outputs] == [b"evil"]


def test_replacement_after_lock_fails():
    """Fairness: once Output_Request revealed the value, it is locked."""
    session, fbc, parties, env = _ideal_world(delta=2, alpha=0)
    tag = fbc.broadcast(parties["P0"], b"good")
    assert fbc.adv_output_request(tag) is None  # too early: not Δ − α yet
    env.run_rounds(2)
    revealed = fbc.adv_output_request(tag)
    assert revealed is not None  # reveal = lock
    session.corrupt("P0")
    assert not fbc.adv_allow(tag, b"evil", "P0")
    env.run_rounds(1)  # delivery happens during the ticks of round Δ
    for party in parties.values():
        if not party.corrupted:
            assert [m for _, m in party.outputs] == [b"good"]


def test_honest_sender_message_untouchable():
    session, fbc, parties, env = _ideal_world()
    tag = fbc.broadcast(parties["P0"], b"good")
    assert not fbc.adv_allow(tag, b"evil", "P0")  # sender honest


# -- ΠFBC (real protocol) --------------------------------------------------------


def test_real_delivery_after_exactly_two_rounds():
    session, fixture, parties, env = _real_world()
    env.run_round([("P0", broadcast_action(b"m"))])
    env.run_rounds(1)
    assert parties["P1"].outputs == []
    env.run_rounds(1)
    assert parties["P1"].outputs == [("Broadcast", b"m")]


def test_real_matches_ideal_outputs():
    """Lemma 2, executably: same script → same per-party outputs."""
    script = [
        [("P0", broadcast_action(b"zebra")), ("P1", broadcast_action(b"apple"))],
        [("P2", broadcast_action(b"mid"))],
        [],
        [],
        [],
    ]
    results = []
    for world in (_ideal_world, _real_world):
        session, _x, parties, env = world(seed=9)
        for actions in script:
            env.run_round(actions)
        results.append({pid: tuple(p.outputs) for pid, p in parties.items()})
    assert results[0] == results[1]


def test_real_all_parties_same_round_regardless_of_order():
    """Section 3.2 item 3: activation order cannot skew delivery rounds."""
    session, fixture, parties, env = _real_world()
    env.run_round([("P2", broadcast_action(b"m"))], order=["P2", "P0", "P1"])
    env.run_round((), order=["P1", "P2", "P0"])
    env.run_round((), order=["P0", "P1", "P2"])
    for party in parties.values():
        assert party.outputs == [("Broadcast", b"m")]


def test_real_messages_hidden_until_delivery():
    """Before Δ rounds, nothing in the adversary's view reveals M."""
    session, fixture, parties, env = _real_world()
    env.run_round([("P0", broadcast_action(b"super-secret-payload"))])
    env.run_rounds(1)
    for _fid, detail in session.adversary.observed:
        assert b"super-secret-payload" not in repr(detail).encode()


def test_real_multiple_senders_and_batches():
    session, fixture, parties, env = _real_world(n=4)
    env.run_round(
        [
            ("P0", broadcast_action(b"a")),
            ("P1", broadcast_action(b"b")),
            ("P2", broadcast_action(b"c")),
        ]
    )
    env.run_round([("P3", broadcast_action(b"d"))])
    env.run_rounds(2)
    first_batch = [m for _, m in parties["P0"].outputs[:3]]
    assert first_batch == [b"a", b"b", b"c"]
    assert [m for _, m in parties["P0"].outputs[3:]] == [b"d"]


def test_real_replayed_ciphertext_ignored():
    """A replayed (c, y) pair is dropped, not delivered twice."""
    session, fixture, parties, env = _real_world()

    replayed = []

    class Replayer:
        pass


    env.run_round([("P0", broadcast_action(b"m"))])
    # capture the UBC leak carrying (c, y) and re-broadcast it verbatim
    for _fid, detail in session.adversary.observed:
        if detail[0] == "Broadcast" and len(detail) == 4:
            _, _tag, payload, sender = detail
            if isinstance(payload, tuple) and len(payload) == 2:
                session.corrupt("P2")
                fixture.ubc.adv_broadcast("P2", payload)
                replayed.append(payload)
    assert replayed
    env.run_rounds(2)
    assert parties["P0"].outputs.count(("Broadcast", b"m")) == 1


def test_real_respects_query_budget():
    """All puzzle work fits in q batches per party per round."""
    session, fixture, parties, env = _real_world(n=3, q=4)
    env.run_round(
        [("P0", broadcast_action(b"a")), ("P1", broadcast_action(b"b"))]
    )
    env.run_rounds(2)
    # No ResourceExhausted was raised, and deliveries happened:
    assert parties["P2"].outputs and len(parties["P2"].outputs) == 2
