"""Replenisher tests: watermark math as pure functions, then the loop.

The watermark machinery is deliberately factored into small pure
functions (EWMA burn rate, watermark sizing, fire/re-arm decision,
replenish amount, extend-vs-rebuild choice) so its edge cases are
testable without building material or running sweeps.  The second half
exercises the :class:`~repro.runtime.material.Replenisher` itself
against a real store: exactly-once firing under hysteresis, append-only
extension, capacity-preserving rebuild, and a background watcher that
never takes a sweep down.
"""

import math

import pytest

from repro.crypto.groups import TEST_GROUP
from repro.crypto.preprocessing import build_material, group_fingerprint
from repro.runtime.material import (
    REPLENISH_ALPHA,
    REPLENISH_HEADROOM,
    REPLENISH_HYSTERESIS,
    REPLENISH_REBUILD_DEAD_FRACTION,
    MaterialStore,
    Replenisher,
    ewma_burn_rate,
    extend_or_rebuild,
    replenish_amount,
    replenish_decision,
    watermark_for,
)


@pytest.fixture
def store(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_MATERIAL_DIR", str(tmp_path))
    return MaterialStore(tmp_path)


# ---------------------------------------------------------------------------
# Pure functions: EWMA burn rate
# ---------------------------------------------------------------------------


def test_ewma_seeds_with_first_observation():
    assert ewma_burn_rate(None, 10) == 10.0
    assert ewma_burn_rate(None, 0) == 0.0


def test_ewma_blends_and_converges():
    assert ewma_burn_rate(10, 20, alpha=0.5) == 15.0
    assert ewma_burn_rate(10, 10, alpha=0.5) == 10.0
    # alpha=1 forgets history entirely; repeated observations converge.
    assert ewma_burn_rate(100, 4, alpha=1.0) == 4.0
    rate = 100.0
    for _ in range(50):
        rate = ewma_burn_rate(rate, 4, alpha=0.5)
    assert abs(rate - 4.0) < 1e-9


def test_ewma_clamps_negatives_and_validates_alpha():
    assert ewma_burn_rate(None, -5) == 0.0
    assert ewma_burn_rate(-5, 10, alpha=0.5) == 5.0
    for alpha in (0.0, -0.1, 1.5):
        with pytest.raises(ValueError, match="alpha"):
            ewma_burn_rate(None, 1, alpha=alpha)


# ---------------------------------------------------------------------------
# Pure functions: watermark sizing
# ---------------------------------------------------------------------------


def test_watermark_scales_burn_by_headroom():
    assert watermark_for(10, headroom=2.0) == 20
    assert watermark_for(10.4, headroom=2.0) == 21  # ceil, never under
    assert watermark_for(0, headroom=2.0) == 0


def test_watermark_floor_dominates_small_rates():
    assert watermark_for(None, floor=5) == 5
    assert watermark_for(1, headroom=2.0, floor=5) == 5
    assert watermark_for(10, headroom=2.0, floor=5) == 20


def test_watermark_validates_inputs():
    with pytest.raises(ValueError, match="headroom"):
        watermark_for(1, headroom=-1)
    with pytest.raises(ValueError, match="floor"):
        watermark_for(1, floor=-1)


# ---------------------------------------------------------------------------
# Pure functions: fire/re-arm hysteresis
# ---------------------------------------------------------------------------


def test_decision_fires_only_below_watermark_while_armed():
    assert replenish_decision(5, 10, armed=True) == (True, False)
    assert replenish_decision(10, 10, armed=True) == (False, True)  # not strict
    assert replenish_decision(50, 10, armed=True) == (False, True)


def test_decision_rearms_only_past_hysteresis_band():
    # Disarmed, hovering inside the band: stays quiet and disarmed.
    assert replenish_decision(11, 10, armed=False, hysteresis=1.25) == (False, False)
    assert replenish_decision(12, 10, armed=False, hysteresis=1.25) == (False, False)
    # ceil(10 * 1.25) = 13 clears the band.
    assert replenish_decision(13, 10, armed=False, hysteresis=1.25) == (False, True)


def test_decision_zero_watermark_never_fires():
    assert replenish_decision(0, 0, armed=True) == (False, True)
    assert replenish_decision(0, 0, armed=False) == (False, True)


def test_decision_validates_inputs():
    with pytest.raises(ValueError, match="hysteresis"):
        replenish_decision(1, 1, armed=True, hysteresis=0.5)
    with pytest.raises(ValueError, match="remaining"):
        replenish_decision(-1, 1, armed=True)


def test_hysteresis_sequence_fires_exactly_once_while_hovering():
    """A pool oscillating just under the watermark produces one fire."""
    armed, fires = True, 0
    for remaining in (9, 8, 9, 8, 9, 12, 11, 12):
        fire, armed = replenish_decision(remaining, 10, armed, hysteresis=1.25)
        fires += fire
    assert fires == 1
    # Only clearing the re-arm threshold (13) resets the trigger.
    fire, armed = replenish_decision(13, 10, armed, hysteresis=1.25)
    assert (fire, armed) == (False, True)
    fire, armed = replenish_decision(9, 10, armed, hysteresis=1.25)
    assert fire


# ---------------------------------------------------------------------------
# Pure functions: replenish amount and extend-vs-rebuild
# ---------------------------------------------------------------------------


def test_amount_targets_rearm_threshold_plus_one_sweep():
    # Target = ceil(10 * 1.25) + ceil(8) = 21; remaining 5 -> add 16.
    assert replenish_amount(5, 8, 10, hysteresis=1.25) == 16
    assert replenish_amount(0, 8, 10, hysteresis=1.25) == 21
    assert replenish_amount(50, 8, 10, hysteresis=1.25) == 0  # already clear


def test_amount_handles_unknown_rate_and_validates():
    assert replenish_amount(0, None, 10, hysteresis=1.0) == 10
    with pytest.raises(ValueError, match="hysteresis"):
        replenish_amount(0, 1, 1, hysteresis=0.9)


def test_extend_until_dead_prefix_dominates():
    assert extend_or_rebuild(100, 0, 50) == "extend"
    assert extend_or_rebuild(100, 80, 100, dead_fraction=0.75) == "extend"
    # 80 dead of a would-be 100-entry blob: >= 0.75, compact instead.
    assert extend_or_rebuild(100, 80, 0, dead_fraction=0.75) == "rebuild"
    assert extend_or_rebuild(0, 0, 10) == "extend"  # nothing dead yet


def test_extend_or_rebuild_validates():
    with pytest.raises(ValueError, match="dead_fraction"):
        extend_or_rebuild(1, 0, 0, dead_fraction=0.0)
    with pytest.raises(ValueError, match="add"):
        extend_or_rebuild(1, 0, -1)


def test_default_constants_are_coherent():
    """The shipped configuration satisfies the invariants the functions
    assume of each other."""
    assert 0.0 < REPLENISH_ALPHA <= 1.0
    assert REPLENISH_HEADROOM >= 1.0
    assert REPLENISH_HYSTERESIS >= 1.0
    assert 0.0 < REPLENISH_REBUILD_DEAD_FRACTION <= 1.0
    # An amount sized by replenish_amount always clears the re-arm band.
    for remaining, rate in ((0, 7), (3, 12), (9, 1)):
        watermark = watermark_for(rate)
        add = replenish_amount(remaining, rate, watermark)
        assert remaining + add >= math.ceil(watermark * REPLENISH_HYSTERESIS)


# ---------------------------------------------------------------------------
# Replenisher against a real store
# ---------------------------------------------------------------------------


def test_replenisher_fires_once_and_extends_append_only(store):
    store.save(build_material(TEST_GROUP, nonces=32, feldman=8, seed=0))
    fingerprint = group_fingerprint(TEST_GROUP)
    before = store.load(TEST_GROUP)
    rep = Replenisher(group=TEST_GROUP, store=store)
    # One sweep burned 20 nonces of the 32; remaining 12 < watermark 40.
    store.record_spend(fingerprint, nonces=20, nonce_high=20, material_seed=0)
    rep.observe({"nonces_spent": 20})
    first = rep.maybe_replenish()
    assert first is not None and first["mode"] == "extend"
    assert first["pool_nonces"] > 32
    # Append-only: the spent prefix is untouched, lineage unchanged.
    after = store.load(TEST_GROUP)
    assert after.nonces[:32] == before.nonces
    assert after.built_with_seed == 0
    # Hysteresis: a second poll in the same state must not fire again.
    assert rep.maybe_replenish() is None
    assert len(rep.replenishments) == 1


def test_replenisher_rebuild_floors_pools_at_previous_size(store):
    store.save(build_material(TEST_GROUP, nonces=16, feldman=4, seed=0))
    fingerprint = group_fingerprint(TEST_GROUP)
    # Entire pool spent: the dead prefix dominates, forcing a rebuild.
    store.record_spend(
        fingerprint, nonces=16, nonce_high=16, feldman_high=4, material_seed=0
    )
    rep = Replenisher(group=TEST_GROUP, store=store)
    record = rep.replenish(nonces=4)
    assert record["mode"] == "rebuild"
    grown = store.load(TEST_GROUP)
    # Capacity never shrinks: each pool is floored at its built size,
    # even the one that contributed no explicit add.
    assert len(grown.nonces) >= 16
    assert len(grown.feldman) >= 4
    assert grown.built_with_seed == 1  # stepped seed
    # save() reset the stale ledger: the fresh pools start unspent.
    ledger = store.ledger(fingerprint)
    assert ledger.nonce_high == 0 or ledger.material_seed == 1


def test_replenisher_untrusted_ledger_counts_pool_as_dead(store):
    store.save(build_material(TEST_GROUP, nonces=16, feldman=4, seed=0))
    sidecar = store.root / f"{group_fingerprint(TEST_GROUP)}{store.SUFFIX}.spent"
    sidecar.write_text("{torn")
    rep = Replenisher(group=TEST_GROUP, store=store)
    status = rep.status()
    assert status["ledger_trusted"] is False
    assert status["nonces_remaining"] == 0
    record = rep.replenish(nonces=8)
    assert record["mode"] == "rebuild"  # unknown spends -> compact fresh


def test_replenisher_without_blob_is_a_noop(store):
    rep = Replenisher(group=TEST_GROUP, store=store)
    assert rep.replenish(nonces=8) is None
    assert rep.maybe_replenish() is None
    assert rep.status()["material"] is None


def test_poll_never_raises(store, monkeypatch):
    rep = Replenisher(group=TEST_GROUP, store=store)

    def boom(*_args, **_kwargs):
        raise OSError("disk on fire")

    monkeypatch.setattr(rep.store, "ledger", boom)
    with pytest.warns(RuntimeWarning, match="will retry"):
        assert rep.poll() is None


def test_watch_thread_polls_and_stops_cleanly(store):
    store.save(build_material(TEST_GROUP, nonces=16, feldman=4, seed=0))
    fingerprint = group_fingerprint(TEST_GROUP)
    rep = Replenisher(group=TEST_GROUP, store=store)
    # Burn already observed from a previous sweep: watermark 40 > pool.
    rep.observe({"nonces_spent": 20})
    watch = rep.watch(interval_s=0.01)
    assert watch.alive
    # Ledger traffic lands while the watcher runs; stop() runs one final
    # poll, so the crossing is acted on even if every timed tick missed it.
    store.record_spend(fingerprint, nonces=12, nonce_high=12, material_seed=0)
    leaked = watch.stop()
    assert leaked is False
    assert not watch.alive
    assert len(rep.replenishments) >= 1
    assert store.inspect()[0]["ok"]


def test_watch_stop_reports_leaked_thread():
    """A watcher stuck in a poll must be *reported*, not silently leaked:
    stop() re-checks liveness after join(timeout), warns, returns True,
    and skips the final poll (the stuck thread may hold the replenisher
    mid-operation)."""
    import threading

    from repro.runtime.material import ReplenishWatch

    class DummyReplenisher:
        polled = 0

        def poll(self):
            self.polled += 1

    release = threading.Event()
    thread = threading.Thread(target=release.wait, daemon=True)
    thread.start()
    rep = DummyReplenisher()
    watch = ReplenishWatch(
        replenisher=rep, _stop=threading.Event(), _thread=thread
    )
    try:
        with pytest.warns(RuntimeWarning, match="did not stop"):
            leaked = watch.stop(timeout=0.05)
        assert leaked is True
        assert watch.alive
        assert rep.polled == 0
    finally:
        release.set()
        thread.join(1.0)


def test_observe_counts_sampling_as_demand(store):
    """A draw that fell back to sampling is demand the pool failed to
    meet — it must raise the burn estimate just like a spend."""
    rep = Replenisher(group=TEST_GROUP, store=store)
    rep.observe({"nonces_spent": 4, "nonces_sampled": 6, "feldman_spent": 1})
    assert rep.burn_nonces == 10.0
    assert rep.burn_feldman == 1.0
    rep.observe(None)  # offline sweeps contribute nothing
    assert rep.burn_nonces == 10.0
