"""SyncNetwork: next-round delivery, metadata-only leaks, injection."""

import pytest

from repro.functionalities.network import SyncNetwork
from repro.uc.entity import Party
from repro.uc.errors import CorruptionError


class Receiver(Party):
    def __init__(self, session, pid):
        super().__init__(session, pid)
        self.received = []

    def on_deliver(self, message, source):
        self.received.append(message)


def _setup(session, n=3):
    net = SyncNetwork(session)
    parties = [Receiver(session, f"P{i}") for i in range(n)]
    return net, parties


def test_delivery_next_round(session, env):
    net, parties = _setup(session)
    net.send(parties[0], "P1", b"hello")
    assert parties[1].received == []
    env.run_rounds(1)
    assert parties[1].received == [("P2P", b"hello", "P0")]


def test_send_all(session, env):
    net, parties = _setup(session)
    net.send_all(parties[0], b"x")
    env.run_rounds(1)
    for party in parties:
        assert party.received == [("P2P", b"x", "P0")]


def test_fifo_per_round(session, env):
    net, parties = _setup(session)
    net.send(parties[0], "P1", b"first")
    net.send(parties[2], "P1", b"second")
    env.run_rounds(1)
    assert [m for _, m, _ in parties[1].received] == [b"first", b"second"]


def test_leak_is_metadata_only(session):
    """Secure channels: the adversary sees who talks to whom, not what."""
    net, parties = _setup(session)
    net.send(parties[0], "P1", b"super-secret")
    leaks = [d for _f, d in session.adversary.observed]
    assert ("Sent", "P0", "P1") in leaks
    assert all(b"super-secret" not in repr(d).encode() for d in leaks)


def test_delivery_to_corrupted_goes_to_adversary(session, env):
    net, parties = _setup(session)
    session.corrupt("P1")
    net.send(parties[0], "P1", b"for-p1")
    env.run_rounds(1)
    assert parties[1].received == []  # the machine no longer runs
    assert any(
        d[0] == "Deliver" and d[1] == "P1"
        for _f, d in session.adversary.observed
        if isinstance(d, tuple)
    )


def test_adv_send_requires_corruption(session):
    net, parties = _setup(session)
    with pytest.raises(CorruptionError):
        net.adv_send("P0", "P1", b"spoof")
    session.corrupt("P0")
    net.adv_send("P0", "P1", b"injected")


def test_unknown_recipient_dropped(session, env):
    net, parties = _setup(session)
    net.send(parties[0], "ghost", b"x")
    env.run_rounds(1)  # no crash, silently dropped


def test_messages_metric(session, env):
    net, parties = _setup(session)
    net.send_all(parties[0], b"x")
    assert session.metrics.get("messages.p2p") == 3
