"""Cost reports: aggregation sanity over real executions."""

from repro.analysis.complexity import cost_report, per_party_oracle_use
from repro.core import build_sbc_stack


def test_cost_report_composed_run():
    stack = build_sbc_stack(n=4, mode="composed", seed=71)
    stack.parties["P0"].broadcast(b"m")
    stack.run_until_delivery()
    report = cost_report(stack.session)
    assert report.rounds >= stack.phi + stack.delta
    assert report.messages_total > 0
    assert report.ro_batches > 0
    assert report.ro_points >= report.ro_batches  # batches carry >= 1 point
    assert report.corruptions == 0
    row = report.as_row()
    assert row["rounds"] == report.rounds
    assert set(row) == {
        "rounds", "messages", "p2p", "ro_batches", "ro_points",
        "sig", "verify", "corruptions",
    }


def test_cost_report_ideal_run_is_cheaper():
    costs = {}
    for mode in ("ideal", "composed"):
        stack = build_sbc_stack(n=4, mode=mode, seed=72)
        stack.parties["P0"].broadcast(b"m")
        stack.run_until_delivery()
        costs[mode] = cost_report(stack.session)
    assert costs["ideal"].ro_points < costs["composed"].ro_points
    assert costs["ideal"].messages_total < costs["composed"].messages_total


def test_per_party_oracle_use():
    stack = build_sbc_stack(n=3, mode="composed", seed=73)
    stack.parties["P0"].broadcast(b"m")
    stack.run_until_delivery()
    usage = per_party_oracle_use(stack.session)
    # every party did puzzle work (receivers solve, senders encrypt):
    for pid in ("P0", "P1", "P2"):
        assert usage.get(pid, 0) > 0
