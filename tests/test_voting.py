"""Self-tallying voting (Figure 17 / Figure 18, Theorem 4)."""

import pytest

from repro.core import build_voting_stack
from repro.crypto.groups import TEST_GROUP
from repro.functionalities.voting import VotingSystem, plurality_tally
from repro.protocols.voting_protocol import Election, decrypt_share, encrypt_share
from repro.uc.environment import Environment
from repro.uc.session import Session


def _drive(stack, votes):
    if stack.mode == "ideal":
        stack.service.init()
    else:
        for authority in stack.authorities.values():
            authority.deal()
        stack.run_rounds(1)
    for pid, candidate in votes:
        stack.parties[pid].vote(candidate)
    stack.run_until_result()
    return stack.results()


@pytest.mark.parametrize("mode", ("ideal", "hybrid"))
def test_simple_tally(mode):
    stack = build_voting_stack(voters=3, mode=mode, seed=30)
    results = _drive(stack, [("V0", "yes"), ("V1", "no"), ("V2", "yes")])
    assert all(r == {"yes": 2, "no": 1} for r in results.values())


@pytest.mark.parametrize("mode", ("ideal", "hybrid"))
def test_unanimous(mode):
    stack = build_voting_stack(voters=4, mode=mode, seed=31)
    results = _drive(stack, [(f"V{i}", "no") for i in range(4)])
    expected = {"yes": 0, "no": 4} if mode == "hybrid" else {"no": 4}
    assert all(r == expected for r in results.values())


def test_three_candidates_hybrid():
    stack = build_voting_stack(
        voters=4, mode="hybrid", seed=32, candidates=("a", "b", "c")
    )
    results = _drive(
        stack, [("V0", "a"), ("V1", "b"), ("V2", "c"), ("V3", "b")]
    )
    assert all(r == {"a": 1, "b": 2, "c": 1} for r in results.values())


def test_all_voters_must_cast_for_self_tally():
    """Σ x_i = 0 holds only over the full voter set ([KY02] property)."""
    stack = build_voting_stack(voters=3, mode="hybrid", seed=33)
    for authority in stack.authorities.values():
        authority.deal()
    stack.run_rounds(1)
    stack.parties["V0"].vote("yes")
    stack.parties["V1"].vote("no")
    # V2 abstains.
    stack.run_until_result()
    for party in stack.parties.values():
        assert party.result is None
        assert "missing" in party.tally_failure


def test_setup_verifies_share_consistency():
    stack = build_voting_stack(voters=3, mode="hybrid", seed=34)
    for authority in stack.authorities.values():
        authority.deal()
    stack.run_rounds(1)
    for voter in stack.parties.values():
        assert voter.secret_exponent is not None
        # verification key matches the secret exponent:
        group, w = voter.group, voter.w
        assert group.exp(w, voter.secret_exponent) == voter.verification_keys[voter.pid]
    # and the exponents sum to zero:
    total = sum(v.secret_exponent for v in stack.parties.values()) % TEST_GROUP.q
    assert total == 0


def test_vote_before_setup_queued():
    stack = build_voting_stack(voters=2, mode="hybrid", seed=35)
    stack.parties["V0"].vote("yes")  # setup not yet run: queued
    for authority in stack.authorities.values():
        authority.deal()
    stack.run_rounds(1)
    stack.parties["V1"].vote("no")
    stack.run_until_result()
    assert all(
        r == {"yes": 1, "no": 1} for r in stack.results().values()
    )


def test_unknown_candidate_rejected():
    stack = build_voting_stack(voters=2, mode="hybrid", seed=36)
    with pytest.raises(ValueError):
        stack.parties["V0"].vote("nobody")


def test_double_vote_ignored():
    stack = build_voting_stack(voters=2, mode="hybrid", seed=37)
    for authority in stack.authorities.values():
        authority.deal()
    stack.run_rounds(1)
    stack.parties["V0"].vote("yes")
    stack.parties["V0"].vote("no")  # second cast dropped by the machine
    stack.parties["V1"].vote("no")
    stack.run_until_result()
    assert all(r == {"yes": 1, "no": 1} for r in stack.results().values())


def test_share_encryption_roundtrip(rng):
    sk = TEST_GROUP.random_scalar(rng)
    pk = TEST_GROUP.power_of_g(sk)
    share = TEST_GROUP.random_scalar(rng)
    ct = encrypt_share(TEST_GROUP, pk, share, rng)
    assert decrypt_share(TEST_GROUP, sk, ct) == share


def test_share_encryption_wrong_key(rng):
    sk = TEST_GROUP.random_scalar(rng)
    pk = TEST_GROUP.power_of_g(sk)
    share = TEST_GROUP.random_scalar(rng)
    ct = encrypt_share(TEST_GROUP, pk, share, rng)
    assert decrypt_share(TEST_GROUP, sk + 1, ct) != share


def test_election_encoding():
    election = Election(voters=("V0", "V1", "V2"), candidates=("a", "b"))
    assert election.exponent_of("a") == 1
    assert election.exponent_of("b") == 4  # (3+1)^1
    assert election.decode_tally(1 * 2 + 4 * 1) == {"a": 2, "b": 1}


# -- ideal FVS specifics --------------------------------------------------------


def test_ideal_fairness_result_before_tally_never_leaks():
    """No Result leak exists before t_tally − α."""
    stack = build_voting_stack(voters=2, mode="ideal", seed=38, phi=3, delta=3, alpha=1)
    stack.service.init()
    stack.parties["V0"].vote("yes")
    stack.parties["V1"].vote("no")
    t_tally = stack.service.t_tally
    alpha = stack.service.alpha
    stack.run_until_result()
    result_leaks = [
        e for e in stack.session.log.filter(kind="leak", source="FVS")
        if e.detail and e.detail[0] == "Result"
    ]
    assert result_leaks
    assert min(e.time for e in result_leaks) == t_tally - alpha


def test_ideal_invalid_vote_dropped():
    session = Session(seed=1)
    vs = VotingSystem(session, phi=2, delta=1, alpha=0, valid_votes=("yes", "no"))
    from repro.functionalities.dummy import DummyVoterParty

    voters = {f"V{i}": DummyVoterParty(session, f"V{i}", vs) for i in range(2)}
    env = Environment(session)
    vs.init()
    voters["V0"].vote("yes")
    voters["V1"].vote("banana")  # invalid: dropped
    env.run_rounds(5)
    results = [o for o in voters["V0"].outputs if o[0] == "Result"]
    assert results and results[-1][1] == {"yes": 1}


def test_ideal_quota_most_recent_kept():
    session = Session(seed=1)
    vs = VotingSystem(session, phi=3, delta=1, alpha=0, valid_votes=("a", "b"), quota=1)
    from repro.functionalities.dummy import DummyVoterParty

    voters = {f"V{i}": DummyVoterParty(session, f"V{i}", vs) for i in range(2)}
    env = Environment(session)
    vs.init()
    voters["V0"].vote("a")
    env.run_rounds(1)
    voters["V0"].vote("b")  # re-vote: replaces within quota
    voters["V1"].vote("a")
    env.run_rounds(5)
    results = [o for o in voters["V0"].outputs if o[0] == "Result"]
    assert results and results[-1][1] == {"a": 1, "b": 1}


def test_plurality_tally_counts():
    assert plurality_tally(["a", "b", "a"]) == {"a": 2, "b": 1}
