"""Arithmetic tier: backend selection, value parity, int normalization.

The :class:`~repro.crypto.groups.ArithBackend` seam must be invisible in
results: whatever backend computes, every value crossing a public API
boundary is a built-in ``int`` and equals what the pure-python reference
produces.  These tests pin the selection machinery (explicit, env var,
auto-detection) and the normalization contract that keeps pickled groups,
material blobs and trace digests byte-identical across backends.
"""

from __future__ import annotations

import pickle

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.crypto.groups import (
    GROUP_2048,
    TEST_GROUP,
    Gmpy2Arith,
    PythonArith,
    SchnorrGroup,
    _init_arith_from_env,
    available_arith_backends,
    get_arith_backend,
    jacobi,
    set_arith_backend,
)
from repro.crypto.preprocessing import build_material, deserialize_material, serialize_material

BACKENDS = available_arith_backends()
HAVE_GMPY2 = "gmpy2" in BACKENDS

pytestmark = pytest.mark.filterwarnings("error::RuntimeWarning")


@pytest.fixture(autouse=True)
def _restore_arith():
    """Every test leaves the process-global backend as it found it."""
    before = get_arith_backend().name
    yield
    set_arith_backend(before)


def fresh_group() -> SchnorrGroup:
    """A TEST_GROUP clone with cold caches (the shipped singleton may be warm)."""
    return SchnorrGroup(p=TEST_GROUP.p, q=TEST_GROUP.q, g=TEST_GROUP.g)


# -- selection --------------------------------------------------------------


def test_python_backend_always_available():
    assert "python" in BACKENDS


def test_set_by_name_and_auto():
    assert set_arith_backend("python").name == "python"
    auto = set_arith_backend("auto")
    assert auto.name == ("gmpy2" if HAVE_GMPY2 else "python")
    assert set_arith_backend(None).name == auto.name


def test_unknown_backend_raises_listing_choices():
    with pytest.raises(ValueError, match="auto"):
        set_arith_backend("bignum9000")


@pytest.mark.skipif(HAVE_GMPY2, reason="gmpy2 installed: the name resolves")
def test_gmpy2_unavailable_raises():
    with pytest.raises(ValueError, match="gmpy2"):
        set_arith_backend("gmpy2")


def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv("REPRO_ARITH", "python")
    _init_arith_from_env()
    assert get_arith_backend().name == "python"


def test_env_var_unavailable_warns_and_falls_back(monkeypatch):
    monkeypatch.setenv("REPRO_ARITH", "bignum9000")
    with pytest.warns(RuntimeWarning, match="falling back"):
        _init_arith_from_env()
    assert get_arith_backend().name in BACKENDS


# -- jacobi / membership fast path ------------------------------------------


def test_jacobi_euler_criterion_on_safe_prime(rng):
    p, q = TEST_GROUP.p, TEST_GROUP.q
    for _ in range(50):
        a = rng.randrange(1, p)
        assert (jacobi(a, p) == 1) == (pow(a, q, p) == 1)


def test_jacobi_edge_cases():
    p = TEST_GROUP.p
    assert jacobi(0, p) == 0
    assert jacobi(p, p) == 0
    assert jacobi(1, p) == 1
    # Multiplicativity: (ab/p) = (a/p)(b/p).
    assert jacobi(6, p) == jacobi(2, p) * jacobi(3, p)


def test_membership_matches_order_check(rng):
    group = fresh_group()
    for _ in range(30):
        a = rng.randrange(1, group.p)
        assert group.is_member(a) == (pow(a, group.q, group.p) == 1)
    assert not group.is_member(0)
    assert not group.is_member(group.p)
    assert not group.is_member(-1)


def test_non_safe_prime_group_keeps_order_check():
    # p = 23 = 2*11 + 1 is safe; use p = 13, q = 3, g = 3 (3^3 = 27 = 1 mod 13)
    # where p != 2q + 1, so membership must run the direct order check.
    group = SchnorrGroup(p=13, q=3, g=3)
    assert not group._safe_prime
    members = {pow(group.g, e, 13) for e in range(3)}
    for a in range(1, 13):
        assert group.is_member(a) == (a in members)


# -- cross-backend value parity ----------------------------------------------


@pytest.mark.parametrize("name", sorted(BACKENDS))
def test_group_ops_identical_across_backends(name, rng):
    reference = fresh_group()
    set_arith_backend("python")
    x = reference.random_scalar(rng)
    y = reference.random_scalar(rng)
    h = reference.exp(reference.g, y)
    expected = (
        reference.power_of_g(x),
        reference.exp(h, x),
        reference.inv(h),
        reference.multi_exp(((h, x), (reference.g, y), (reference.exp(h, 3), 5))),
    )
    set_arith_backend(name)
    group = fresh_group()
    actual = (
        group.power_of_g(x),
        group.exp(h, x),
        group.inv(h),
        group.multi_exp(((h, x), (group.g, y), (group.exp(h, 3), 5))),
    )
    assert actual == expected
    assert all(type(value) is int for value in actual)


@pytest.mark.parametrize("name", sorted(BACKENDS))
def test_results_are_builtin_ints(name, rng):
    set_arith_backend(name)
    group = fresh_group()
    group.precompute_fixed_base()
    _w, table = group._fb_state
    assert all(type(entry) is int for row in table for entry in row)
    assert type(group.power_of_g(12345)) is int
    assert type(group.exp(group.g + 1, 7)) is int
    assert type(group.inv(5)) is int
    assert type(group.multi_exp(((9, 3), (25, 4)))) is int


@pytest.mark.parametrize("name", sorted(BACKENDS))
def test_warmed_group_pickle_round_trip(name):
    # Regression: fixed-base tables built under gmpy2 used to hold mpz
    # entries, which survived into pickles and material blobs.  A warmed
    # group must pickle to pure ints and rebuild cleanly.
    set_arith_backend(name)
    group = fresh_group()
    group.warm_up()
    clone = pickle.loads(pickle.dumps(group))
    assert (clone.p, clone.q, clone.g) == (group.p, group.q, group.g)
    assert clone._fb_state is None  # caches never travel
    assert clone.power_of_g(777) == group.power_of_g(777)


@pytest.mark.parametrize("name", sorted(BACKENDS))
def test_material_blob_identical_across_backends(name):
    set_arith_backend("python")
    reference = serialize_material(build_material(TEST_GROUP, nonces=4, feldman=2))
    set_arith_backend(name)
    blob = serialize_material(build_material(TEST_GROUP, nonces=4, feldman=2))
    assert blob == reference
    material = deserialize_material(blob)
    assert all(type(entry) is int for row in material.fb_table for entry in row)
    material.attach(fresh_group())


# -- property-based parity ---------------------------------------------------


@pytest.mark.skipif(not HAVE_GMPY2, reason="gmpy2 not installed")
@settings(max_examples=60, deadline=None)
@given(
    base=st.integers(min_value=1, max_value=TEST_GROUP.p - 1),
    exponent=st.integers(min_value=0, max_value=TEST_GROUP.q - 1),
)
def test_gmpy2_powmod_matches_python(base, exponent):
    python, native = PythonArith(), BACKENDS["gmpy2"]
    assert isinstance(native, Gmpy2Arith)
    result = native.powmod(base, exponent, TEST_GROUP.p)
    assert result == python.powmod(base, exponent, TEST_GROUP.p)
    assert type(result) is int


@pytest.mark.skipif(not HAVE_GMPY2, reason="gmpy2 not installed")
@settings(max_examples=60, deadline=None)
@given(a=st.integers(min_value=1, max_value=TEST_GROUP.p - 1))
def test_gmpy2_invert_and_jacobi_match_python(a):
    python, native = PythonArith(), BACKENDS["gmpy2"]
    assert native.invert(a, TEST_GROUP.p) == python.invert(a, TEST_GROUP.p)
    assert native.jacobi(a, TEST_GROUP.p) == python.jacobi(a, TEST_GROUP.p)


@pytest.mark.skipif(not HAVE_GMPY2, reason="gmpy2 not installed")
def test_gmpy2_invert_error_type():
    with pytest.raises(ValueError):
        BACKENDS["gmpy2"].invert(0, TEST_GROUP.p)
    with pytest.raises(ValueError):
        PythonArith().invert(0, TEST_GROUP.p)


class _FakeMpz(int):
    """Stands in for gmpy2.mpz: an int subclass, so ``type(x) is int`` fails."""


class _FakeGmpy2:
    """API-faithful gmpy2 stub so Gmpy2Arith's wrapper logic (int
    normalization, error conversion) is covered on python-only hosts."""

    mpz = _FakeMpz

    @staticmethod
    def powmod(base, exponent, modulus):
        return _FakeMpz(pow(int(base), int(exponent), int(modulus)))

    @staticmethod
    def invert(a, modulus):
        try:
            return _FakeMpz(pow(int(a), -1, int(modulus)))
        except ValueError:
            raise ZeroDivisionError("invert() no inverse exists") from None

    @staticmethod
    def jacobi(a, n):
        return jacobi(int(a), int(n))


def test_gmpy2_wrapper_normalizes_and_converts_errors():
    backend = Gmpy2Arith(_FakeGmpy2())
    p = TEST_GROUP.p
    result = backend.powmod(3, 20, p)
    assert result == pow(3, 20, p) and type(result) is int
    inverse = backend.invert(7, p)
    assert inverse == pow(7, -1, p) and type(inverse) is int
    with pytest.raises(ValueError, match="not invertible"):
        backend.invert(0, p)
    assert backend.jacobi(p - 1, p) == jacobi(p - 1, p)
    assert isinstance(backend.to_native(5), _FakeMpz)


@settings(max_examples=40, deadline=None)
@given(a=st.integers(min_value=0, max_value=1 << 512))
def test_jacobi_matches_euler_criterion_2048(a):
    p, q = GROUP_2048.p, GROUP_2048.q
    value = a % p
    if value == 0:
        assert jacobi(value, p) == 0
    else:
        assert (jacobi(value, p) == 1) == (pow(value, q, p) == 1)
