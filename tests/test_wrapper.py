"""Wq resource wrapper: batch semantics, budgets, the corrupted pool.

The key modeling property (Figure 5): one Evaluate *batch* of arbitrarily
many points costs one of the q per-round queries — q bounds sequential
depth, not parallel width.
"""

import pytest

from repro.functionalities.random_oracle import RandomOracle
from repro.functionalities.wrapper import QueryWrapper
from repro.uc.entity import Party
from repro.uc.errors import ResourceExhausted


@pytest.fixture
def wrapper(session):
    oracle = RandomOracle(session, fid="F*RO")
    return QueryWrapper(session, oracle, q=3)


def test_batch_counts_once(session, wrapper):
    Party(session, "P0")
    responses = wrapper.evaluate("P0", [b"a", b"b", b"c", b"d"])
    assert len(responses) == 4
    assert wrapper.used("P0") == 1
    assert wrapper.remaining("P0") == 2


def test_budget_exhaustion(session, wrapper):
    Party(session, "P0")
    for _ in range(3):
        wrapper.evaluate("P0", [b"x"])
    with pytest.raises(ResourceExhausted):
        wrapper.evaluate("P0", [b"y"])


def test_budgets_are_per_party(session, wrapper):
    Party(session, "P0")
    Party(session, "P1")
    for _ in range(3):
        wrapper.evaluate("P0", [b"x"])
    wrapper.evaluate("P1", [b"y"])  # P1's budget untouched by P0
    assert wrapper.remaining("P1") == 2


def test_budget_resets_each_round(session, env, wrapper):
    Party(session, "P0")
    for _ in range(3):
        wrapper.evaluate("P0", [b"x"])
    env.run_rounds(1)
    assert wrapper.remaining("P0") == 3
    wrapper.evaluate("P0", [b"x"])
    assert wrapper.used("P0") == 1


def test_corrupted_coalition_shares_one_budget(session, wrapper):
    Party(session, "P0")
    Party(session, "P1")
    Party(session, "P2")
    session.corrupt("P0")
    session.corrupt("P1")
    wrapper.evaluate("P0", [b"a"])
    wrapper.evaluate("P1", [b"b"])
    wrapper.evaluate("P0", [b"c"])
    # Three batches spent by the coalition as a whole:
    with pytest.raises(ResourceExhausted):
        wrapper.evaluate("P1", [b"d"])
    # Honest party unaffected:
    wrapper.evaluate("P2", [b"e"])


def test_corruption_mid_round_merges_budget(session, wrapper):
    Party(session, "P0")
    Party(session, "P1")
    session.corrupt("P0")
    wrapper.evaluate("P0", [b"a"])
    wrapper.evaluate("P0", [b"b"])
    wrapper.evaluate("P0", [b"c"])
    session.corrupt("P1")  # P1 joins the coalition: pool is exhausted
    with pytest.raises(ResourceExhausted):
        wrapper.evaluate("P1", [b"d"])


def test_responses_match_oracle(session):
    oracle = RandomOracle(session, fid="F*RO")
    wrapper = QueryWrapper(session, oracle, q=2)
    Party(session, "P0")
    (response,) = wrapper.evaluate("P0", [b"point"])
    assert response == oracle.query(b"point")


def test_invalid_q_rejected(session):
    oracle = RandomOracle(session, fid="F*RO")
    with pytest.raises(ValueError):
        QueryWrapper(session, oracle, q=0)


def test_hash_fn_closure_metered(session, wrapper):
    Party(session, "P0")
    h = wrapper.hash_fn("P0")
    h(b"1")
    h(b"2")
    h(b"3")
    with pytest.raises(ResourceExhausted):
        h(b"4")
