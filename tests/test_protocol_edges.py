"""Edge cases of the protocol adapters: malformed inputs, replay, misc."""

import pytest

from repro.core import build_sbc_stack, build_tle_stack
from repro.core.stacks import build_fbc_fixture
from repro.functionalities.dummy import DummyBroadcastParty
from repro.functionalities.tle import BOTTOM, INVALID_TIME
from repro.tle.astrolabous import TLECiphertext
from repro.uc.environment import Environment
from repro.uc.session import Session


# -- ΠFBC -----------------------------------------------------------------


def _fbc_world(seed=1, q=4, n=3):
    session = Session(seed=seed)
    fixture = build_fbc_fixture(session, q=q)
    parties = {}
    for i in range(n):
        party = DummyBroadcastParty(session, f"P{i}", fixture.fbc)
        fixture.fbc.attach(party)
        parties[f"P{i}"] = party
    return session, fixture, parties, Environment(session)


def test_fbc_malformed_ubc_payloads_ignored():
    session, fixture, parties, env = _fbc_world()
    session.corrupt("P2")
    for garbage in (
        b"raw-bytes",
        ("not", "a", "pair", "x"),
        (b"nocipher", b"mask"),
        (TLECiphertext(difficulty=1, rate=4, body=b"", chain=tuple(bytes(32) for _ in range(5))), b"short-mask"),
    ):
        fixture.ubc.adv_broadcast("P2", garbage)
    env.run_rounds(3)
    assert parties["P0"].outputs == []  # nothing valid was broadcast


def test_fbc_wrong_difficulty_ciphertext_ignored():
    session, fixture, parties, env = _fbc_world()
    session.corrupt("P2")
    ct = TLECiphertext(
        difficulty=1, rate=4, body=b"x", chain=tuple(bytes(32) for _ in range(5))
    )
    fixture.ubc.adv_broadcast("P2", (ct, bytes(fixture.fbc.msg_len)))
    env.run_rounds(3)
    assert parties["P0"].outputs == []


def test_fbc_adversarial_garbage_puzzle_dropped_quietly():
    """A well-formed difficulty-2 puzzle whose body doesn't authenticate."""
    session, fixture, parties, env = _fbc_world(q=4)
    session.corrupt("P2")
    ct = TLECiphertext(
        difficulty=2, rate=4, body=b"garbage-body",
        chain=tuple(bytes([i]) * 32 for i in range(9)),
    )
    fixture.ubc.adv_broadcast("P2", (ct, bytes(fixture.fbc.msg_len)))
    env.run_round([("P0", lambda p: p.broadcast(b"legit"))])
    env.run_rounds(3)
    # the legit message arrives; the garbage one is silently dropped
    assert parties["P0"].outputs == [("Broadcast", b"legit")]


def test_fbc_corrupted_party_can_follow_protocol():
    """adv_broadcast runs the honest sender code for a corrupted party."""
    session, fixture, parties, env = _fbc_world()
    session.corrupt("P2")
    fixture.fbc.adv_broadcast("P2", b"from-corrupted")
    # Corrupted parties don't tick via the environment; the adversary
    # drives the round work itself:
    env.run_rounds(1)
    fixture.fbc.on_party_tick(parties["P2"])
    env.run_rounds(3)
    received = [m for _, m in parties["P0"].outputs]
    assert b"from-corrupted" in received


# -- ΠTLE ------------------------------------------------------------------


def test_tle_dec_none_and_negative():
    stack = build_tle_stack(mode="hybrid", seed=2)
    assert stack.parties["P0"].dec(None, 5) == BOTTOM
    assert stack.parties["P0"].dec(b"x", -1) == BOTTOM


def test_tle_invalid_time_path():
    stack = build_tle_stack(mode="hybrid", seed=3)
    stack.enc("P0", b"m", 8)
    stack.run_rounds(8)
    (_m, c, _t) = stack.parties["P0"].retrieve()[0]
    # ciphertext's tau is 8; asking with tau=5 while Cl >= 8:
    assert stack.parties["P1"].dec(c, 5) == INVALID_TIME


def test_tle_unknown_ciphertext_bottom():
    stack = build_tle_stack(mode="hybrid", seed=4)
    stack.run_rounds(3)
    bogus = (
        TLECiphertext(difficulty=0, rate=4, body=b"", chain=(bytes(32),)),
        b"mask",
        b"check",
    )
    assert stack.parties["P0"].dec(bogus, 1) == BOTTOM


# -- ΠSBC -------------------------------------------------------------------


def test_sbc_wrong_tau_broadcast_ignored():
    stack = build_sbc_stack(n=3, mode="hybrid", seed=5)
    stack.parties["P0"].broadcast(b"legit")  # opens the period
    stack.run_rounds(1)
    stack.session.corrupt("P2")
    # A triple with the wrong release time must be ignored by receivers.
    stack.sbc.ubc.adv_broadcast("P2", (b"cipher", 999, bytes(stack.sbc.msg_len)))
    stack.run_until_delivery()
    for batch in stack.delivered().values():
        if batch is not None:
            assert batch == [b"legit"]


def test_sbc_oversized_adv_message_rejected():
    stack = build_sbc_stack(n=3, mode="hybrid", seed=6)
    stack.session.corrupt("P2")
    from repro.protocols.common import MessageTooLong

    with pytest.raises(MessageTooLong):
        stack.sbc.adv_broadcast("P2", b"x" * 10_000)


def test_sbc_duplicate_output_suppressed():
    """Each party outputs its batch exactly once at τ_rel."""
    stack = build_sbc_stack(n=3, mode="hybrid", seed=7)
    stack.parties["P0"].broadcast(b"m")
    stack.run_rounds(stack.phi + stack.delta + 3)
    for party in stack.parties.values():
        broadcasts = [o for o in party.outputs if o[0] == "Broadcast"]
        assert len(broadcasts) == 1
