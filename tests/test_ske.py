"""Symmetric encryption: round-trips, authentication, key separation."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.ske import (
    DecryptionError,
    SymmetricKey,
    ske_decrypt,
    ske_encrypt,
    ske_gen,
)


def test_roundtrip(rng):
    key = ske_gen(rng)
    for message in (b"", b"x", b"hello world" * 50):
        assert ske_decrypt(key, ske_encrypt(key, message, rng)) == message


def test_wrong_key_fails(rng):
    k1, k2 = ske_gen(rng), ske_gen(rng)
    ct = ske_encrypt(k1, b"secret", rng)
    with pytest.raises(DecryptionError):
        ske_decrypt(k2, ct)


def test_tampering_detected(rng):
    key = ske_gen(rng)
    ct = bytearray(ske_encrypt(key, b"secret", rng))
    ct[20] ^= 0x01
    with pytest.raises(DecryptionError):
        ske_decrypt(key, bytes(ct))


def test_truncated_ciphertext_rejected(rng):
    key = ske_gen(rng)
    with pytest.raises(DecryptionError):
        ske_decrypt(key, b"short")


def test_fresh_nonce_randomizes(rng):
    key = ske_gen(rng)
    assert ske_encrypt(key, b"m", rng) != ske_encrypt(key, b"m", rng)


def test_key_size_enforced():
    with pytest.raises(ValueError):
        SymmetricKey(b"too-short")


def test_gen_without_rng_uses_csprng():
    assert ske_gen().material != ske_gen().material


@given(st.binary(max_size=256), st.integers())
def test_roundtrip_property(message, seed):
    rng = random.Random(seed)
    key = ske_gen(rng)
    assert ske_decrypt(key, ske_encrypt(key, message, rng)) == message
