"""Applications over the fully-composed ΠSBC stack (Corollary 1, end-to-end).

DURS and STVS each run over the complete protocol pyramid:
ΠDURS/ΠSTVS → ΠSBC → {ΠUBC, ΠTLE → ΠFBC → ΠUBC} → Wq(F*RO)/FRO/Gclock.
"""

import pytest

from repro.core import build_durs_stack, build_voting_stack

DURS_PARAMS = dict(phi=4, delta=8, alpha=3)


def test_durs_composed_agreement():
    stack = build_durs_stack(n=4, mode="composed", seed=41, **DURS_PARAMS)
    stack.parties["P0"].urs_request()
    stack.parties["P2"].urs_request()
    stack.run_until_urs()
    stack.run_rounds(2)
    values = {party.urs for party in stack.parties.values()}
    assert len(values) == 1 and None not in values


def test_durs_composed_matches_hybrid_delivery_round():
    rounds = {}
    for mode in ("hybrid", "composed"):
        stack = build_durs_stack(n=3, mode=mode, seed=42, **DURS_PARAMS)
        stack.parties["P0"].urs_request()
        rounds[mode] = stack.run_until_urs()
    assert rounds["hybrid"] == rounds["composed"]


def test_durs_composed_full_substrate_metered():
    stack = build_durs_stack(n=3, mode="composed", seed=43, **DURS_PARAMS)
    stack.parties["P0"].urs_request()
    stack.run_until_urs()
    metrics = stack.session.metrics
    assert metrics.get("ro.points") > 0  # puzzles were really solved
    assert metrics.get("ro.F*RO:fbc:durs") > 0


@pytest.mark.parametrize("seed", [1, 2])
def test_voting_composed_tally(seed):
    stack = build_voting_stack(
        voters=3, mode="composed", seed=seed, phi=5, delta=3
    )
    for authority in stack.authorities.values():
        authority.deal()
    stack.run_rounds(1)
    for pid, candidate in (("V0", "yes"), ("V1", "no"), ("V2", "yes")):
        stack.parties[pid].vote(candidate)
    stack.run_until_result()
    assert all(
        result == {"yes": 2, "no": 1} for result in stack.results().values()
    )


def test_voting_composed_ballots_hidden_until_release():
    stack = build_voting_stack(voters=2, mode="composed", seed=3, phi=5, delta=3)
    for authority in stack.authorities.values():
        authority.deal()
    stack.run_rounds(1)
    stack.parties["V0"].vote("yes")
    stack.parties["V1"].vote("no")
    stack.run_until_result()
    # The adversary observed the full composed substrate; no ballot group
    # element (as decimal text) may appear in any leak before the tally.
    # Cheap proxy: the vote labels never appear.
    for _fid, detail in stack.session.adversary.observed:
        text = repr(detail)
        assert "'yes'" not in text and "'no'" not in text
