"""The adversarial scenario conformance matrix, cell by cell.

Every cell of :func:`repro.scenarios.default_matrix` (stacks ×
adversaries × fault patterns × backends) plus the targeted extra
scenarios runs as its own parametrized test asserting that each paper
property holds exactly where the paper says it must — and that each
attack succeeds exactly where the paper says it can.  The full sweep is
``slow``-marked so CI can run it on a dedicated job; a quick sub-matrix
stays in the default selection.
"""

import pytest

from repro.runtime import compare_trace_digests
from repro.scenarios import (
    default_matrix,
    evaluate_scenario,
    extra_scenarios,
    run_matrix,
)

MATRIX = default_matrix()
CELLS = MATRIX.expand()
EXTRAS = extra_scenarios()

#: The quick subset run in the default (non-slow) selection: one fault
#: pattern, the reference backend, every stack × adversary pair.
SMOKE = [
    spec
    for spec in CELLS
    if spec.faults.name == "none" and spec.backend == "sequential"
]


def _assert_cell(spec):
    result = evaluate_scenario(spec)
    mismatched = [
        f"{p.name}: holds={p.holds} expected={p.expected} ({p.detail})"
        for p in result.mismatches
    ]
    assert result.ok, f"{spec.cell_id}: {mismatched}"


def test_matrix_meets_acceptance_floor():
    """The declared sweep is at least the promised 24-cell matrix."""
    assert len(MATRIX.stacks) >= 3
    assert len(MATRIX.adversaries) >= 2
    assert len(MATRIX.faults) >= 2
    assert len(MATRIX.backends) == 2
    assert MATRIX.cells >= 24
    assert len(CELLS) == MATRIX.cells
    assert len({spec.cell_id for spec in CELLS + EXTRAS}) == len(CELLS) + len(EXTRAS)


@pytest.mark.parametrize("spec", SMOKE, ids=[s.cell_id for s in SMOKE])
def test_smoke_cell(spec):
    _assert_cell(spec)


@pytest.mark.slow
@pytest.mark.parametrize("spec", CELLS, ids=[s.cell_id for s in CELLS])
def test_matrix_cell(spec):
    _assert_cell(spec)


@pytest.mark.parametrize("spec", EXTRAS, ids=[s.name for s in EXTRAS])
def test_extra_scenario(spec):
    _assert_cell(spec)


@pytest.mark.slow
def test_matrix_cross_backend_digests_agree():
    """Same cell under sequential and pooled → identical event traces,
    even mid-attack (adaptive corruption invalidates driver caches)."""
    report = run_matrix(CELLS)
    assert report.ok, [cell.cell_id for cell in report.failures]
    assert report.backend_mismatches() == []


def test_matrix_seed_sensitivity():
    """Distinct seeds change the trace, not the verdicts."""
    sample = [
        spec.replace(seed=3)
        for spec in SMOKE
        if spec.stack == "sbc-hybrid"
    ]
    baseline = {spec.cell_id: evaluate_scenario(spec) for spec in sample}
    for spec in sample:
        reseeded = evaluate_scenario(spec)
        assert reseeded.ok
        original = evaluate_scenario(spec.replace(seed=0))
        assert original.ok
        assert not compare_trace_digests(reseeded.digest, original.digest)
        assert baseline[spec.cell_id].digest == reseeded.digest  # deterministic


def test_thread_executor_matches_inline():
    specs = [spec for spec in SMOKE if spec.stack in ("ubc", "fbc")]
    inline = run_matrix(specs, executor="inline")
    threaded = run_matrix(specs, executor="thread", workers=2)
    assert [c.digest for c in inline.cells] == [c.digest for c in threaded.cells]
    assert threaded.ok
