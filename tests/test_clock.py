"""Gclock semantics: all-honest advancement, corruption, idempotence."""

import pytest

from repro.uc.entity import Party
from repro.uc.errors import CorruptionError, UnknownEntity


def _parties(session, n):
    return [Party(session, f"P{i}") for i in range(n)]


def test_clock_starts_at_zero(session):
    assert session.clock.read() == 0


def test_advances_only_when_all_honest_ticked(session):
    _parties(session, 3)
    assert not session.clock.tick("P0")
    assert not session.clock.tick("P1")
    assert session.clock.read() == 0
    assert session.clock.tick("P2")
    assert session.clock.read() == 1


def test_duplicate_ticks_ignored(session):
    _parties(session, 2)
    session.clock.tick("P0")
    session.clock.tick("P0")
    assert session.clock.read() == 0
    session.clock.tick("P1")
    assert session.clock.read() == 1


def test_unknown_party_rejected(session):
    with pytest.raises(UnknownEntity):
        session.clock.tick("ghost")


def test_corruption_unblocks_round(session):
    _parties(session, 3)
    session.clock.tick("P0")
    session.clock.tick("P1")
    session.corrupt("P2")  # the holdout disappears: round advances
    assert session.clock.read() == 1


def test_corrupted_tick_carries_no_weight(session):
    _parties(session, 2)
    session.corrupt("P0")
    assert not session.clock.tick("P0")
    assert session.clock.read() == 0
    session.clock.tick("P1")
    assert session.clock.read() == 1


def test_party_advance_clock_idempotent_per_round(session):
    parties = _parties(session, 2)
    calls = []
    parties[0].end_of_round = lambda: calls.append(session.clock.read())
    parties[0].advance_clock()
    parties[0].advance_clock()  # same round: ignored
    assert calls == [0]
    parties[1].advance_clock()
    parties[0].advance_clock()
    assert calls == [0, 1]


def test_environment_cannot_drive_corrupted_party(session):
    parties = _parties(session, 2)
    session.corrupt("P0")
    with pytest.raises(CorruptionError):
        parties[0].advance_clock()


def test_rounds_metric(session, env):
    _parties(session, 2)
    env.run_rounds(5)
    assert session.metrics.get("rounds.advanced") == 5
