"""Concurrent protocol sessions under one global clock.

Composability in practice: two independent SBC instances (disjoint party
sets, independent substrates) share a single ``Gclock`` and advance in
lockstep; neither perturbs the other's outputs or timing.  Likewise, one
party set can run SBC and an unrelated UBC workload simultaneously.
"""

from repro.core.stacks import MSG_LEN_SBC
from repro.functionalities.random_oracle import RandomOracle
from repro.functionalities.tle import TimeLockEncryption
from repro.functionalities.ubc import UnfairBroadcast
from repro.protocols.sbc_protocol import SBCParty, SBCProtocolAdapter
from repro.uc.environment import Environment
from repro.uc.session import Session

PHI, DELTA = 5, 3


def _sbc_instance(session, tag, pids):
    ubc = UnfairBroadcast(session, fid=f"FUBC:{tag}")
    tle = TimeLockEncryption(
        session, leak=lambda cl: cl + 1, delay=1, fid=f"FTLE:{tag}"
    )
    oracle = RandomOracle(session, fid=f"FRO:{tag}", digest_size=MSG_LEN_SBC)
    adapter = SBCProtocolAdapter(
        session, ubc=ubc, tle=tle, oracle=oracle,
        phi=PHI, delta=DELTA, fid=f"PiSBC:{tag}",
    )
    return {pid: SBCParty(session, pid, adapter) for pid in pids}


def test_two_sbc_sessions_share_one_clock():
    session = Session(seed=61)
    group_a = _sbc_instance(session, "A", ["P0", "P1", "P2"])
    group_b = _sbc_instance(session, "B", ["Q0", "Q1", "Q2"])
    env = Environment(session)

    group_a["P0"].broadcast(b"alpha-session")
    group_b["Q1"].broadcast(b"beta-session")
    env.run_rounds(PHI + DELTA + 1)

    for party in group_a.values():
        batches = [o[1] for o in party.outputs if o[0] == "Broadcast"]
        assert batches[-1] == [b"alpha-session"]
    for party in group_b.values():
        batches = [o[1] for o in party.outputs if o[0] == "Broadcast"]
        assert batches[-1] == [b"beta-session"]


def test_sessions_started_in_different_rounds():
    """Each instance's broadcast period is anchored at its own first send."""
    session = Session(seed=62)
    group_a = _sbc_instance(session, "A", ["P0", "P1"])
    group_b = _sbc_instance(session, "B", ["Q0", "Q1"])
    env = Environment(session)

    group_a["P0"].broadcast(b"early")
    env.run_rounds(2)
    group_b["Q0"].broadcast(b"late")
    env.run_rounds(PHI + DELTA + 1)

    a_out = [o for o in group_a["P1"].outputs if o[0] == "Broadcast"]
    b_out = [o for o in group_b["Q1"].outputs if o[0] == "Broadcast"]
    assert a_out and b_out
    a_round = [e.time for e in session.log.filter(kind="output", source="P1")][0]
    b_round = [e.time for e in session.log.filter(kind="output", source="Q1")][0]
    assert a_round == PHI + DELTA
    assert b_round == 2 + PHI + DELTA


def test_sbc_coexists_with_unrelated_ubc_traffic():
    session = Session(seed=63)
    group = _sbc_instance(session, "A", ["P0", "P1"])
    side_channel = UnfairBroadcast(session, fid="FUBC:side")
    chatter = []
    for party in group.values():
        party.route[side_channel.fid] = (
            lambda message, source: chatter.append(message)
        )
        party.clock_recipients.append(side_channel)
    env = Environment(session)

    group["P0"].broadcast(b"sbc-payload")
    side_channel.broadcast(group["P1"], b"side-chatter")
    env.run_rounds(PHI + DELTA + 1)

    batches = [o[1] for o in group["P0"].outputs if o[0] == "Broadcast"]
    assert batches[-1] == [b"sbc-payload"]
    assert ("Broadcast", b"side-chatter", "P1") in chatter
