"""Dummy parties: routing discipline and input forwarding."""

from repro.functionalities.dummy import (
    DummyBroadcastParty,
    DummyTLEParty,
    DummyURSParty,
    DummyVoterParty,
)
from repro.functionalities.durs import DelayedURS
from repro.functionalities.tle import TimeLockEncryption
from repro.functionalities.ubc import UnfairBroadcast
from repro.functionalities.voting import VotingSystem
from repro.uc.entity import Functionality


def test_own_functionality_deliveries_go_to_z(session, env):
    ubc = UnfairBroadcast(session)
    parties = [DummyBroadcastParty(session, f"P{i}", ubc) for i in range(2)]
    parties[0].broadcast(b"m")
    env.run_rounds(1)
    assert parties[1].outputs == [("Broadcast", b"m", "P0")]


def test_foreign_deliveries_are_routed_not_output(session):
    ubc = UnfairBroadcast(session)
    other = Functionality(session, "Other")
    party = DummyBroadcastParty(session, "P0", ubc)
    captured = []
    party.route["Other"] = lambda message, source: captured.append(message)
    other.deliver(party, ("Whatever", 1))
    assert party.outputs == []
    assert captured == [("Whatever", 1)]


def test_unrouted_foreign_deliveries_dropped(session):
    ubc = UnfairBroadcast(session)
    other = Functionality(session, "Unknown")
    party = DummyBroadcastParty(session, "P0", ubc)
    other.deliver(party, ("Noise",))
    assert party.outputs == []


def test_tle_dummy_outputs_responses(session, env):
    tle = TimeLockEncryption(session, delay=0)
    party = DummyTLEParty(session, "P0", tle)
    assert party.enc(b"m", 2) == "Encrypting"
    triples = party.retrieve()
    assert party.outputs[-1] == ("Encrypted", triples)
    env.run_rounds(2)
    (_m, c, _t) = triples[0]
    result = party.dec(c, 2)
    assert result == b"m"
    assert party.outputs[-1] == ("Dec", c, 2, b"m")


def test_urs_dummy_waiting_flag(session):
    durs = DelayedURS(session, delta=2, alpha=0)
    party = DummyURSParty(session, "P0", durs)
    assert party.waiting is False
    party.urs_request()
    assert party.waiting is True


def test_voter_dummy_forwards(session, env):
    vs = VotingSystem(session, phi=2, delta=1, alpha=0, valid_votes=("a",))
    vs.init()
    voter = DummyVoterParty(session, "V0", vs)
    assert voter.vote("a") is not None
    assert voter.vote("invalid") is None
