"""Tests for the pluggable execution runtime.

Covers the runtime's three contracts:

* the default (``sequential``) backend reproduces the pre-runtime engine
  **byte for byte** — pinned against golden trace digests captured from
  the seed engine before the runtime extraction;
* the ``pooled`` backend produces *identical* event traces to the
  sequential backend for any fixed seed (its elisions are trace-neutral);
* :class:`~repro.runtime.pool.SessionPool` sweeps are deterministic and
  complete across >= 32 seeds.

Plus unit coverage for the scheduler policies, the backend registry, the
session topology caches and the accelerated group arithmetic.
"""

import random

import pytest

from repro.core import RepeatedSBC, build_sbc_stack, build_voting_stack
from repro.crypto.groups import GROUP_2048, TEST_GROUP, SchnorrGroup
from repro.runtime import (
    BatchScheduler,
    SessionPool,
    available_backends,
    get_backend,
    run_sbc_trial,
    sequential_loop,
    trace_digest,
)
from repro.uc.entity import Party
from repro.uc.session import Session

# ---------------------------------------------------------------------------
# Golden digests: captured from the seed engine (commit 0dc83b5) before the
# runtime extraction.  The default backend must reproduce them forever.
# ---------------------------------------------------------------------------

GOLDEN_SBC_COMPOSED = {
    0: "9f53833c36cc9c2a182e7e2980bc70f316c3b02914647e96833cb1e817495add",
    1: "34ae70ec8b5902925721304333aaa85e325feb76930fc9ae1a462e1dc0e8a85c",
    7: "e257058c58c0e0268f5d98004e0954c428fc9e3b210e0970e333685d7890ba5b",
}
GOLDEN_SBC_HYBRID_SEED5 = (
    "65fca327855e32b290cebe6612eb30adcaf320a26e4766408cf2e83e003667cc"
)
# Re-derived when trace_digest moved from repr to canonical_detail: the
# voting trace carries the tally as a dict, whose repr depends on
# insertion order (the non-canonical rendering the digest fix removes).
# The underlying event trace is unchanged — only that dict's rendering is
# now sorted; the SBC goldens above were unaffected (tuple-only details).
GOLDEN_VOTING_HYBRID_SEED3 = (
    "f4297794b2609f4281fe15fb8c19b7ba798a22e7bb6798bd28e87373a8c89af7"
)


def _run_sbc(seed: int, mode: str = "composed", backend=None, **kwargs):
    stack = build_sbc_stack(n=4, mode=mode, seed=seed, backend=backend, **kwargs)
    stack.parties["P0"].broadcast(b"m0")
    stack.parties["P1"].broadcast(b"m1")
    stack.run_until_delivery()
    return stack


@pytest.mark.parametrize("seed", sorted(GOLDEN_SBC_COMPOSED))
def test_default_backend_matches_pre_runtime_engine(seed):
    stack = _run_sbc(seed)
    assert trace_digest(stack.session.log) == GOLDEN_SBC_COMPOSED[seed]


def test_default_backend_golden_hybrid_and_voting():
    stack = build_sbc_stack(n=3, mode="hybrid", seed=5, phi=4, delta=2)
    stack.parties["P0"].broadcast(b"x")
    stack.run_until_delivery()
    assert trace_digest(stack.session.log) == GOLDEN_SBC_HYBRID_SEED5

    voting = build_voting_stack(voters=3, mode="hybrid", seed=3)
    for authority in voting.authorities.values():
        authority.deal()
    voting.run_rounds(1)
    for index, candidate in enumerate(("yes", "no", "yes")):
        voting.parties[f"V{index}"].vote(candidate)
    voting.run_until_result()
    assert trace_digest(voting.session.log) == GOLDEN_VOTING_HYBRID_SEED3
    assert voting.results()["V0"] == {"yes": 2, "no": 1}


# ---------------------------------------------------------------------------
# Determinism regression: sequential vs pooled backends
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 3, 11])
def test_sequential_and_pooled_traces_identical(seed):
    sequential = _run_sbc(seed, backend="sequential")
    pooled = _run_sbc(seed, backend="pooled")
    assert trace_digest(sequential.session.log) == trace_digest(pooled.session.log)
    assert sequential.delivered() == pooled.delivered()


def test_sequential_and_pooled_traces_identical_voting():
    digests = []
    for backend in ("sequential", "pooled"):
        stack = build_voting_stack(voters=3, mode="hybrid", seed=9, backend=backend)
        for authority in stack.authorities.values():
            authority.deal()
        stack.run_rounds(1)
        for index, candidate in enumerate(("no", "no", "yes")):
            stack.parties[f"V{index}"].vote(candidate)
        stack.run_until_result()
        digests.append(trace_digest(stack.session.log))
    assert digests[0] == digests[1]


def test_batched_backend_same_outputs_lighter_trace():
    sequential = _run_sbc(2, backend="sequential")
    batched = _run_sbc(2, backend="batched")
    assert batched.delivered() == sequential.delivered()
    assert len(batched.session.log) == 0  # light trace: no events kept
    # Deterministic: a second batched run delivers identically.
    again = _run_sbc(2, backend="batched")
    assert again.delivered() == batched.delivered()


def test_order_reassignment_invalidates_pooled_cache():
    digests = []
    for backend in ("sequential", "pooled"):
        stack = build_sbc_stack(
            n=4, mode="hybrid", seed=6, phi=4, delta=2, backend=backend
        )
        stack.run_rounds(1)  # populate any driver-side caches
        stack.env.order = ["P3", "P2", "P1", "P0"]  # then flip the order
        stack.parties["P0"].broadcast(b"o")
        stack.run_until_delivery()
        digests.append(trace_digest(stack.session.log))
    assert digests[0] == digests[1]


def test_session_pool_honors_backend_instance_overrides():
    from repro.runtime import POOLED

    report = SessionPool(
        backend=POOLED.with_trace("light"), n=3, mode="hybrid"
    ).run([0])
    assert report.results[0].digest == ""  # the trace override reached the session


def test_repeated_sbc_accepts_backend():
    runner = RepeatedSBC(n=3, seed=4, phi=4, delta=2, backend="pooled")
    delivered = runner.run_period({"P0": b"warm"})
    assert all(batch == [b"warm"] for batch in delivered.values())


# ---------------------------------------------------------------------------
# SessionPool
# ---------------------------------------------------------------------------


def test_session_pool_smoke_32_seeds():
    seeds = list(range(32))
    pool = SessionPool(backend="pooled", n=3, mode="hybrid", phi=4, delta=2)
    report = pool.run(seeds)
    assert report.sessions == 32
    assert [result.seed for result in report.results] == seeds
    # Every session delivered and advanced the same round schedule.
    assert all(result.rounds == report.results[0].rounds for result in report.results)
    assert all(result.outputs for result in report.results)
    # Same-seed determinism across pool runs.
    again = pool.run(seeds)
    assert [r.digest for r in again.results] == [r.digest for r in report.results]
    # Distinct seeds produce distinct traces.
    assert len({result.digest for result in report.results}) == 32


def test_session_pool_matches_sequential_loop_digests():
    seeds = list(range(6))
    params = dict(n=3, mode="hybrid", phi=4, delta=2)
    baseline = sequential_loop(seeds, **params)
    pooled = SessionPool(backend="pooled", **params).run(seeds)
    assert [r.digest for r in pooled.results] == [r.digest for r in baseline.results]


def test_session_pool_thread_executor():
    seeds = list(range(4))
    pool = SessionPool(
        backend="pooled", executor="thread", workers=2, n=3, mode="hybrid"
    )
    report = pool.run(seeds)
    inline = SessionPool(backend="pooled", n=3, mode="hybrid").run(seeds)
    assert [r.digest for r in report.results] == [r.digest for r in inline.results]


def test_run_sbc_trial_is_self_contained():
    result = run_sbc_trial(17, n=3, mode="hybrid", backend="sequential")
    assert result.seed == 17
    assert result.rounds > 0 and result.messages > 0
    assert result.digest and result.outputs


def test_light_trace_digest_is_empty_not_constant():
    # A trace-off log must digest to "" (falsy), never to the constant
    # hash of zero events — distinct executions would compare equal.
    result = run_sbc_trial(0, n=3, mode="hybrid", backend="batched")
    assert result.digest == ""
    light = run_sbc_trial(1, n=3, mode="hybrid", backend="pooled", trace="light")
    assert light.digest == ""


def test_pooled_driver_fires_instance_assigned_hook():
    from repro.uc.adversary import PassiveAdversary

    counts = {}
    for backend in ("sequential", "pooled"):
        adversary = PassiveAdversary()
        seen = []
        adversary.on_party_activated = seen.append  # instance-level hook
        stack = build_sbc_stack(
            n=3, mode="hybrid", seed=2, phi=4, delta=2,
            adversary=adversary, backend=backend,
        )
        stack.parties["P0"].broadcast(b"x")
        stack.run_until_delivery()
        counts[backend] = len(seen)
    assert counts["pooled"] == counts["sequential"] > 0


# ---------------------------------------------------------------------------
# Backend registry and scheduler units
# ---------------------------------------------------------------------------


def test_backend_registry():
    backends = available_backends()
    assert {"sequential", "pooled", "batched"} <= set(backends)
    assert get_backend(None).name == "sequential"
    assert get_backend("pooled").driver_cls.name == "batched"
    assert get_backend(backends["batched"]) is backends["batched"]
    with pytest.raises(ValueError):
        get_backend("warp-drive")


def test_scheduler_fifo_preserves_global_order():
    scheduler = BatchScheduler(policy="fifo")
    scheduler.enqueue("net", "A", 1)
    scheduler.enqueue("net", "B", 2)
    scheduler.enqueue("net", "A", 3)
    assert scheduler.pending("net") == 3
    assert scheduler.drain("net") == [("A", 1), ("B", 2), ("A", 3)]
    assert scheduler.pending("net") == 0
    assert scheduler.drain("net") == []


def test_scheduler_grouped_preserves_per_key_fifo():
    scheduler = BatchScheduler(policy="grouped")
    scheduler.enqueue("net", "A", 1)
    scheduler.enqueue("net", "B", 2)
    scheduler.enqueue("net", "A", 3)
    assert scheduler.drain("net") == [("A", 1), ("A", 3), ("B", 2)]
    with pytest.raises(ValueError):
        BatchScheduler(policy="bogus")


# ---------------------------------------------------------------------------
# Session topology caches + randomness guard
# ---------------------------------------------------------------------------


class _Probe(Party):
    pass


def test_honest_parties_cache_invalidation():
    session = Session(seed=1)
    a = _Probe(session, "A")
    assert list(session.honest_parties) == ["A"]
    assert session.honest_pids == frozenset({"A"})
    first_epoch = session.topology_epoch

    _Probe(session, "B")  # registration invalidates
    assert session.topology_epoch > first_epoch
    assert list(session.honest_parties) == ["A", "B"]

    session.corrupt("A")  # corruption invalidates
    assert list(session.honest_parties) == ["B"]
    assert session.honest_pids == frozenset({"B"})
    assert a.corrupted


def test_honest_parties_cached_between_changes():
    session = Session(seed=1)
    _Probe(session, "A")
    view = session.honest_parties
    assert session.honest_parties is view  # cached object, no rebuild


def test_random_bytes_zero_is_guarded_and_stateless():
    session = Session(seed=42)
    state = session.rng.getstate()
    assert session.random_bytes(0) == b""
    assert session.rng.getstate() == state  # the guard must not consume RNG
    assert len(session.random_bytes(16)) == 16


# ---------------------------------------------------------------------------
# Accelerated group arithmetic
# ---------------------------------------------------------------------------


def _cold_group() -> SchnorrGroup:
    return SchnorrGroup(p=TEST_GROUP.p, q=TEST_GROUP.q, g=TEST_GROUP.g)


def test_fixed_base_table_bit_identical():
    group = _cold_group()
    rng = random.Random(7)
    exponents = [0, 1, 2, group.q - 1, group.q, group.q + 5]
    exponents += [rng.randrange(group.q) for _ in range(100)]
    expected = [pow(group.g, e % group.q, group.p) for e in exponents]
    assert [group.power_of_g(e) for e in exponents] == expected
    group.precompute_fixed_base()  # idempotent
    assert [group.power_of_g(e) for e in exponents] == expected


def test_fixed_base_lazy_for_large_groups():
    group = SchnorrGroup(p=GROUP_2048.p, q=GROUP_2048.q, g=GROUP_2048.g)
    assert group.power_of_g(12345) == pow(group.g, 12345, group.p)
    assert group._fb_table is None  # big modulus: no table after one call
    group.precompute_fixed_base()
    assert group._fb_table is not None
    assert group.power_of_g(12345) == pow(group.g, 12345, group.p)


def test_multi_exp_equivalence():
    rng = random.Random(8)
    for group in (TEST_GROUP,):
        for count in (0, 1, 2, 4):
            pairs = [
                (rng.randrange(2, group.p), rng.randrange(group.q))
                for _ in range(count)
            ]
            expected = 1
            for base, e in pairs:
                expected = expected * pow(base, e % group.q, group.p) % group.p
            assert group.multi_exp(pairs) == expected
    # exponent-1 and generator folding
    element = TEST_GROUP.random_element(rng)
    assert TEST_GROUP.multi_exp(((element, 1),)) == element
    assert TEST_GROUP.multi_exp(((TEST_GROUP.g, 5), (TEST_GROUP.g, 7))) == (
        TEST_GROUP.power_of_g(12)
    )


def test_multi_exp_interleaved_path():
    rng = random.Random(9)
    group = GROUP_2048
    pairs = [(rng.randrange(2, group.p), rng.randrange(2, group.q)) for _ in range(3)]
    expected = 1
    for base, e in pairs:
        expected = expected * pow(base, e, group.p) % group.p
    assert group._interleaved_multi_exp(pairs) == expected
    assert group.multi_exp(pairs) == expected


def test_bsgs_matches_linear_scan_contract():
    group = TEST_GROUP
    for exponent in (0, 1, 5, 99, 1000, 65537):
        assert group.discrete_log_small(group.power_of_g(exponent)) == exponent
    base = group.power_of_g(11)
    assert group.discrete_log_small(pow(base, 321, group.p), base=base) == 321
    # Bound semantics: exponent must lie in [0, bound).
    assert group.discrete_log_small(group.power_of_g(99), bound=100) == 99
    with pytest.raises(ValueError):
        group.discrete_log_small(group.power_of_g(100), bound=100)
    with pytest.raises(ValueError):
        group.discrete_log_small(group.power_of_g(12345), bound=1000)


def test_bsgs_small_order_base_smallest_exponent():
    group = TEST_GROUP
    # The identity has order 1: every exponent maps to 1; the scan
    # returned the smallest (0) and BSGS must as well.
    assert group.discrete_log_small(1, base=1) == 0
    with pytest.raises(ValueError):
        group.discrete_log_small(5, base=1)


def test_element_encoding_cached():
    group = _cold_group()
    element = group.power_of_g(3)
    first = group.element_to_bytes(element)
    assert group.element_to_bytes(element) is first  # memoised
    assert int.from_bytes(first, "big") == element
    assert len(first) == (group.p.bit_length() + 7) // 8


# ---------------------------------------------------------------------------
# Canonical trace digests (cross-process stability)
# ---------------------------------------------------------------------------


def test_canonical_detail_matches_repr_for_simple_payloads():
    from repro.runtime import canonical_detail

    # The historical digest hashed repr() of these shapes; canonical_detail
    # must render them identically so pre-fix golden digests keep holding.
    for payload in (
        None, 7, -1, "text", b"bytes", (1, b"m", "P0"), ("one",), (),
        [1, 2], [], (1, (2, (3,))), "quote'and\"quote",
    ):
        assert canonical_detail(payload) == repr(payload)


def test_canonical_detail_sorts_dicts_and_sets():
    from repro.runtime import canonical_detail

    assert canonical_detail({"b": 1, "a": 2}) == canonical_detail({"a": 2, "b": 1})
    assert canonical_detail({"a": 2, "b": 1}) == "{'a': 2, 'b': 1}"
    assert canonical_detail({2, 1, 3}) == "{1, 2, 3}"
    assert canonical_detail(frozenset((2, 1))) == "frozenset({1, 2})"
    assert canonical_detail(set()) == "set()"
    assert canonical_detail(frozenset()) == "frozenset()"
    # Nested inside the tuple shape events actually use.
    assert canonical_detail(("Result", {"yes": 2, "no": 1}, None)) == (
        "('Result', {'no': 1, 'yes': 2}, None)"
    )


def test_trace_digest_stable_across_dict_insertion_orders():
    from repro.uc.trace import EventLog

    forward = EventLog()
    forward.record(0, "output", "P0", {"yes": 2, "no": 1})
    backward = EventLog()
    backward.record(0, "output", "P0", {"no": 1, "yes": 2})
    assert trace_digest(forward) == trace_digest(backward)
    # repr-hashing (the pre-fix digest) would have diverged here:
    assert repr({"yes": 2, "no": 1}) != repr({"no": 1, "yes": 2})


# ---------------------------------------------------------------------------
# Empty pool reports must be loud, never vacuous
# ---------------------------------------------------------------------------


def test_empty_pool_report_summary_raises():
    from repro.runtime import PoolReport

    empty = PoolReport(backend="pooled", executor="inline", wall_time_s=0.0)
    with pytest.raises(ValueError, match="no trials"):
        empty.summary()


def test_reports_match_rejects_empty_reports():
    from repro.runtime import PoolReport, reports_match

    empty = PoolReport(backend="pooled", executor="inline", wall_time_s=0.0)
    full = SessionPool(backend="pooled", n=3, mode="hybrid").run([0])
    with pytest.raises(ValueError, match="empty"):
        reports_match(empty, empty)
    with pytest.raises(ValueError, match="empty"):
        reports_match(empty, full)
    assert reports_match(full, full)


# ---------------------------------------------------------------------------
# Cross-party agreement inside pooled trials
# ---------------------------------------------------------------------------


def test_ensure_agreement_returns_common_view():
    from repro.runtime import ensure_agreement

    view = [b"m0", b"m1"]
    assert ensure_agreement({"P0": list(view), "P1": list(view)}) == view
    with pytest.raises(ValueError, match="no delivered views"):
        ensure_agreement({})


def test_ensure_agreement_flags_disagreeing_party():
    from repro.runtime import TrialDisagreement, ensure_agreement

    with pytest.raises(TrialDisagreement, match="P2"):
        ensure_agreement(
            {"P0": [b"m"], "P1": [b"m"], "P2": [b"forged"]}, seed=13
        )


def test_run_sbc_trial_catches_disagreeing_stack(monkeypatch):
    # A trial whose stack delivers different batches to different parties
    # must abort the sweep, not archive P0's view as "the" output.
    import repro.core.stacks as stacks

    from repro.runtime import TrialDisagreement

    real_build = stacks.build_sbc_stack

    class _TamperedStack:
        def __init__(self, stack):
            self._stack = stack

        def __getattr__(self, name):
            return getattr(self._stack, name)

        def delivered(self):
            views = dict(self._stack.delivered())
            victim = sorted(views)[-1]
            views[victim] = (views[victim] or []) + [b"forged"]
            return views

    monkeypatch.setattr(
        stacks, "build_sbc_stack", lambda **kw: _TamperedStack(real_build(**kw))
    )
    with pytest.raises(TrialDisagreement):
        run_sbc_trial(3, n=3, mode="hybrid")


# ---------------------------------------------------------------------------
# Chunked process fan-out
# ---------------------------------------------------------------------------


def test_auto_chunksize_targets_chunks_per_worker():
    from repro.runtime import auto_chunksize

    assert auto_chunksize(64, 4) == 4   # 16 chunks for 4 workers
    assert auto_chunksize(7, 4) == 1
    assert auto_chunksize(0, 4) == 1
    assert auto_chunksize(1000, 1) == 250


def test_resolve_workers_validation():
    from repro.runtime import resolve_workers

    assert resolve_workers(3) == 3
    assert resolve_workers(None) >= 1
    with pytest.raises(ValueError):
        resolve_workers(0)


def test_session_pool_rejects_bad_fanout_config():
    with pytest.raises(ValueError, match="chunksize"):
        SessionPool(chunksize=0)
    with pytest.raises(ValueError, match="max_tasks_per_child"):
        SessionPool(max_tasks_per_child=0)
    with pytest.raises(ValueError, match="executor"):
        SessionPool(executor="fiber")


def test_session_pool_process_executor_digests_match_inline():
    seeds = list(range(4))
    params = dict(n=3, mode="hybrid", phi=4, delta=2)
    inline = SessionPool(backend="pooled", **params).run(seeds)
    fanned = SessionPool(
        backend="pooled", executor="process", workers=2, chunksize=2, **params
    ).run(seeds)
    assert [r.seed for r in fanned.results] == seeds  # deterministic order
    assert [r.digest for r in fanned.results] == [r.digest for r in inline.results]
    assert fanned.workers == 2 and fanned.chunksize == 2
    assert fanned.summary()["chunksize"] == 2


def test_session_pool_process_worker_recycling():
    # 5 tasks, 2 workers, recycle after 2: at least one worker must be
    # replaced mid-sweep, and order/digests still match the inline run.
    seeds = list(range(5))
    params = dict(n=3, mode="hybrid", phi=4, delta=2)
    recycled = SessionPool(
        backend="pooled", executor="process", workers=2,
        chunksize=1, max_tasks_per_child=2, **params,
    ).run(seeds)
    inline = SessionPool(backend="pooled", **params).run(seeds)
    assert [r.digest for r in recycled.results] == [r.digest for r in inline.results]
