"""Online-mode tests: spend the preprocessed pools, deterministically.

The offline/online contract, end to end:

* the :class:`~repro.crypto.randomness.RandomnessSource` seam is
  digest-neutral by default — routing signing/proving/sharing through
  it changed nothing for sample-per-call runs;
* a :class:`~repro.runtime.material.MaterialCursor` spends exactly its
  reserved slice, never double-spends across tasks or workers, and
  falls back to counted sampling on exhaustion;
* pool-consuming runs are digest-pinned separately from per-call runs
  (the spend lands in the trace) yet seed-for-seed reproducible and
  ``--verify``-able across process boundaries;
* the store ledgers consumption so ``repro material inspect`` reports
  remaining capacity, and flags misnamed blobs with a non-zero exit.
"""

import random
import warnings

import pytest

from repro.crypto.groups import TEST_GROUP, SchnorrGroup
from repro.crypto.preprocessing import build_material, group_fingerprint
from repro.crypto.randomness import (
    SampleSource,
    current_source,
    install_source,
    spending,
)
from repro.crypto.schnorr import schnorr_keygen, schnorr_sign, schnorr_verify
from repro.crypto.shamir import feldman_share, feldman_verify
from repro.crypto.zkp import cp_prove, cp_verify, pok_prove, pok_verify
from repro.runtime import (
    MaterialCursor,
    MaterialStore,
    OnlinePlan,
    ParallelSweep,
    SessionPool,
    online_pool_requirement,
    run_voting_trial,
)
from repro.runtime.material import DEFAULT_NONCES_PER_TASK

VOTING = dict(runner=run_voting_trial, voters=3)


@pytest.fixture
def store(tmp_path, monkeypatch):
    """An isolated store that both this process and forked workers see."""
    monkeypatch.setenv("REPRO_MATERIAL_DIR", str(tmp_path))
    return MaterialStore(tmp_path)


def _material(nonces=32, feldman=8, threshold=2):
    return build_material(
        TEST_GROUP, nonces=nonces, feldman=feldman, feldman_threshold=threshold
    )


# ---------------------------------------------------------------------------
# The seam: default source is the ambient one and samples per call
# ---------------------------------------------------------------------------


def test_default_source_is_sample_and_scoped_install_restores():
    assert isinstance(current_source(), SampleSource)
    material = _material()
    cursor = MaterialCursor(material.fingerprint, material, nonce_range=(0, 4))
    with spending(cursor):
        assert current_source() is cursor
    assert isinstance(current_source(), SampleSource)
    previous = install_source(cursor)
    try:
        assert current_source() is cursor
    finally:
        install_source(previous)


def test_sample_source_matches_historical_rng_consumption():
    """The seam must replicate the pre-seam draws exactly (digest pin)."""
    keypair = schnorr_keygen(random.Random(1))
    signature = schnorr_sign(keypair, b"m", random.Random(2))
    rng = random.Random(2)
    k = TEST_GROUP.random_scalar(rng)
    assert signature.r == TEST_GROUP.power_of_g(k)
    e_free_rng_state = rng.random()
    rng2 = random.Random(2)
    TEST_GROUP.random_scalar(rng2)
    assert e_free_rng_state == rng2.random()


# ---------------------------------------------------------------------------
# MaterialCursor: reserved slices, exhaustion, fallback accounting
# ---------------------------------------------------------------------------


def test_cursor_spends_its_reserved_slice_in_order():
    material = _material()
    cursor = MaterialCursor(material.fingerprint, material, nonce_range=(4, 8))
    keypair = schnorr_keygen(random.Random(1))
    rng = random.Random(9)
    with spending(cursor):
        signatures = [schnorr_sign(keypair, bytes([i]), rng) for i in range(4)]
    for i, signature in enumerate(signatures):
        assert signature.r == material.nonces[4 + i].r
        assert schnorr_verify(TEST_GROUP, keypair.public, bytes([i]), signature)
    summary = cursor.spend_summary()
    assert summary["nonces_spent"] == 4
    assert summary["nonces_sampled"] == 0
    assert summary["nonce_range"] == (4, 8)


def test_cursor_exhaustion_falls_back_to_sampling_with_counted_warning():
    material = _material(nonces=2)
    cursor = MaterialCursor(material.fingerprint, material, nonce_range=(0, 8))
    keypair = schnorr_keygen(random.Random(1))
    rng = random.Random(3)
    with spending(cursor):
        with pytest.warns(RuntimeWarning, match="falling back to sampling"):
            signatures = [schnorr_sign(keypair, bytes([i]), rng) for i in range(5)]
    for i, signature in enumerate(signatures):
        assert schnorr_verify(TEST_GROUP, keypair.public, bytes([i]), signature)
    summary = cursor.spend_summary()
    assert summary["nonces_spent"] == 2  # the whole built pool
    assert summary["nonces_sampled"] == 3  # the exhausted tail, counted


def test_cursor_pok_and_cp_proofs_spend_pool_nonces():
    material = _material()
    cursor = MaterialCursor(material.fingerprint, material, nonce_range=(0, 8))
    rng = random.Random(5)
    secret = 1234567
    public = TEST_GROUP.power_of_g(secret)
    base2 = TEST_GROUP.power_of_g(99)
    public2 = TEST_GROUP.exp(base2, secret)
    with spending(cursor):
        pok = pok_prove(TEST_GROUP, TEST_GROUP.g, public, secret, rng)
        cp = cp_prove(
            TEST_GROUP, TEST_GROUP.g, public, base2, public2, secret, rng
        )
    assert pok_verify(TEST_GROUP, TEST_GROUP.g, public, pok)
    assert cp_verify(TEST_GROUP, TEST_GROUP.g, public, base2, public2, cp)
    assert pok.a == material.nonces[0].r  # g-based commitment straight off the pool
    assert cursor.spend_summary()["nonces_spent"] == 2


def test_cursor_feldman_entry_spend_verifies_and_respects_threshold():
    material = _material(feldman=4, threshold=2)
    cursor = MaterialCursor(
        material.fingerprint, material, feldman_range=(1, 3)
    )
    rng = random.Random(7)
    with spending(cursor):
        shares, commitment = feldman_share(TEST_GROUP, 42, 2, 5, rng)
    for share in shares:
        assert feldman_verify(TEST_GROUP, share, commitment)
    # Tail commitments came straight from the pool entry; C_0 = g^42.
    assert commitment.commitments[1:] == material.feldman[1].commitments[1:]
    assert commitment.commitments[0] == TEST_GROUP.power_of_g(42)
    assert cursor.spend_summary()["feldman_spent"] == 1
    # A mismatched threshold cannot use the entry: counted fallback.
    with spending(cursor):
        with pytest.warns(RuntimeWarning):
            shares3, commitment3 = feldman_share(TEST_GROUP, 7, 3, 5, rng)
    assert len(commitment3.commitments) == 4
    for share in shares3:
        assert feldman_verify(TEST_GROUP, share, commitment3)
    assert cursor.spend_summary()["feldman_sampled"] == 1


def test_cursor_wrong_group_samples_instead_of_misspending():
    material = _material()
    other = SchnorrGroup(p=23, q=11, g=2)
    cursor = MaterialCursor(material.fingerprint, material, nonce_range=(0, 8))
    with spending(cursor):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            k = current_source().nonce_scalar(other, random.Random(1))
    assert 1 <= k < other.q
    assert cursor.spend_summary()["nonces_spent"] == 0
    assert cursor.spend_summary()["nonces_sampled"] == 1


# ---------------------------------------------------------------------------
# OnlinePlan: partitioning, sizing, slot assignment
# ---------------------------------------------------------------------------


def test_plan_partitions_tasks_into_disjoint_slices(store):
    store.build([TEST_GROUP], nonces=64, feldman=16)
    plan = OnlinePlan.for_tasks([10, 11, 12], store=store)
    ranges = [plan.ranges_for(plan.slot_of(task)) for task in (10, 11, 12)]
    nonce_ranges = [r[0] for r in ranges]
    assert nonce_ranges == [(0, 8), (8, 16), (16, 24)]
    for i, (start, stop) in enumerate(nonce_ranges):
        for j, (start2, stop2) in enumerate(nonce_ranges):
            if i != j:
                assert stop <= start2 or stop2 <= start  # pairwise disjoint
    with pytest.raises(KeyError):
        plan.slot_of(99)


def test_plan_explicit_slots_must_cover_tasks(store):
    store.build([TEST_GROUP], nonces=16, feldman=4)
    with pytest.raises(ValueError, match="slots"):
        OnlinePlan.for_tasks([1, 2, 3], slots=[0, 1], store=store)
    plan = OnlinePlan.for_tasks([1, 2, 3], slots=[0, 0, 1], store=store)
    assert plan.slot_of(1) == plan.slot_of(2) == 0  # shared replay slot
    assert plan.required_pools()["nonces"] == 2 * DEFAULT_NONCES_PER_TASK


def test_online_pool_requirement_sizes_linearly():
    assert online_pool_requirement(16) == {"nonces": 128, "feldman": 32}
    assert online_pool_requirement(0) == {"nonces": 0, "feldman": 0}
    with pytest.raises(ValueError):
        online_pool_requirement(-1)


def test_plan_open_without_material_degrades_to_counted_sampling(store):
    store.build([TEST_GROUP], nonces=8, feldman=2)
    plan = OnlinePlan.for_tasks([0], store=store)
    store.clear()
    # Material gone (and the plan's pool shape matches nothing cached):
    # the cursor must keep the trial alive, sampling everything.
    with pytest.warns(RuntimeWarning, match="unavailable or stale"):
        cursor = plan.open(0)
    keypair = schnorr_keygen(random.Random(1))
    with spending(cursor):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            signature = schnorr_sign(keypair, b"m", random.Random(2))
    assert schnorr_verify(TEST_GROUP, keypair.public, b"m", signature)
    assert cursor.spend_summary()["nonces_spent"] == 0
    assert cursor.spend_summary()["nonces_sampled"] == 1


# ---------------------------------------------------------------------------
# Pools and sweeps: digest pinning, reproducibility, verify
# ---------------------------------------------------------------------------


def test_online_requires_pool_bearing_material_and_warmup():
    with pytest.raises(ValueError, match="material"):
        SessionPool(online=True)
    with pytest.raises(ValueError, match="thread"):
        SessionPool(online=True, material="disk", executor="thread")
    with pytest.raises(ValueError, match="warmup"):
        SessionPool(online=True, material="disk", warmup=False)


def test_online_run_is_digest_pinned_and_reproducible(store):
    store.build([TEST_GROUP], nonces=64, feldman=16)
    online = SessionPool(
        executor="inline", material="disk", online=True, trace="full", **VOTING
    ).run(range(3))
    baseline = SessionPool(executor="inline", trace="full", **VOTING).run(range(3))
    replay = SessionPool(
        executor="inline", material="disk", online=True, trace="full", **VOTING
    ).run(range(3))
    for spent, plain, again in zip(
        online.results, baseline.results, replay.results
    ):
        assert spent.online["nonces_spent"] == 3  # one ballot proof per voter
        assert plain.online is None
        # Pool-consuming digests are pinned apart from per-call digests...
        assert spent.digest != plain.digest
        # ...but seed-for-seed reproducible against the same plan.
        assert spent.digest == again.digest
    assert online.online_spend["nonces_spent"] == 9
    assert online.summary()["online"] is True


def test_online_spend_event_recorded_in_trace(store):
    store.build([TEST_GROUP], nonces=64, feldman=16)
    plan = OnlinePlan.for_tasks([5], store=store)
    from repro.runtime import warm_with_material

    warm_with_material("disk")
    from repro.runtime.pool import run_voting_trial as trial

    result = trial(5, voters=3, online=plan, trace="full", backend="sequential")
    assert result.online["nonce_range"] == (0, 8)
    assert result.online["fingerprint"] == plan.fingerprint
    # The spend summary itself is what got hashed into the digest: rerun
    # with a *different* slot and the digest moves even though the
    # election itself is identical only when the spent entries differ.
    plan2 = OnlinePlan.for_tasks([5], slots=[1], store=store)
    result2 = trial(5, voters=3, online=plan2, trace="full", backend="sequential")
    assert result2.online["nonce_range"] == (8, 16)
    assert result.digest != result2.digest


def test_process_sweep_verify_and_no_double_spend(store):
    store.build([TEST_GROUP], nonces=6 * 8, feldman=12)
    sweep = ParallelSweep(
        executor="process", workers=2, material="shared", online=True,
        trace="full", **VOTING
    )
    verdict = sweep.verify(range(6))
    assert verdict.matched  # process spend == inline replay, seed for seed
    ranges = [result.online["nonce_range"] for result in verdict.report.results]
    assert len(set(ranges)) == len(ranges)
    for i, (start, stop) in enumerate(ranges):
        for j, (start2, stop2) in enumerate(ranges):
            if i != j:
                assert stop <= start2 or stop2 <= start, (
                    f"workers double-spent: {ranges}"
                )
    assert verdict.report.online_spend["nonces_spent"] == 18
    assert verdict.report.online_spend["nonces_sampled"] == 0


def test_exhausted_pool_mid_sweep_still_verifies(store):
    # Pools sized for ~1.5 tasks: later slots run dry and sample, and the
    # sweep must stay digest-equal to the inline replay (the fallback is
    # part of the pinned behavior, not a divergence).
    store.build([TEST_GROUP], nonces=4, feldman=2)
    sweep = ParallelSweep(
        executor="process", workers=2, material="shared", online=True,
        trace="full", **VOTING
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        verdict = sweep.verify(range(4))
    assert verdict.matched
    spend = verdict.report.online_spend
    assert spend["nonces_spent"] > 0
    assert spend["nonces_sampled"] > 0  # the counted fallback
    assert spend["nonces_spent"] + spend["nonces_sampled"] == 4 * 3


def test_sweep_plan_and_report_carry_the_online_axis(store):
    store.build([TEST_GROUP], nonces=32, feldman=8)
    sweep = ParallelSweep(
        executor="process", workers=2, material="disk", online=True, **VOTING
    )
    plan = sweep.plan(4)
    assert plan.online is True
    assert plan.summary()["online"] is True
    offline = ParallelSweep(executor="process", workers=2, **VOTING).plan(4)
    assert offline.online is False


# ---------------------------------------------------------------------------
# Scenario matrix: shared slots for backend replays
# ---------------------------------------------------------------------------


def test_matrix_online_slots_share_backend_replays():
    from repro.scenarios import default_matrix
    from repro.scenarios.runner import online_slots_for

    specs = default_matrix(seed=0).expand()[:12]
    slots = online_slots_for(specs)
    by_key = {}
    for spec, slot in zip(specs, slots):
        key = (spec.stack, spec.adversary, spec.faults.name, spec.seed)
        by_key.setdefault(key, set()).add(slot)
    for key, assigned in by_key.items():
        assert len(assigned) == 1, f"replay group {key} split across slots"
    assert len({next(iter(v)) for v in by_key.values()}) == len(by_key)


def test_matrix_online_run_keeps_cross_backend_digests(store):
    from repro.scenarios import default_matrix
    from repro.scenarios.runner import run_matrix

    store.build([TEST_GROUP], nonces=64, feldman=16)
    specs = [
        spec for spec in default_matrix(seed=0).expand()
        if spec.stack == "ubc"
    ][:6]
    report = run_matrix(specs, executor="inline", material="disk", online=True)
    assert report.ok
    assert report.backend_mismatches() == []


# ---------------------------------------------------------------------------
# Store ledger and inspect
# ---------------------------------------------------------------------------


def test_sweep_ledgers_consumption_and_inspect_reports_remaining(store):
    store.build([TEST_GROUP], nonces=64, feldman=16)
    SessionPool(
        executor="inline", material="disk", online=True, **VOTING
    ).run(range(2))
    records = {
        r["fingerprint"]: r for r in store.inspect() if r.get("ok")
    }
    record = records[group_fingerprint(TEST_GROUP)]
    assert record["nonces"] == 64
    assert record["nonces_spent"] == 6
    # Remaining capacity is high-water based: two voting trials occupy
    # slots 0 and 1 (8 nonces each) and spend 3 nonces inside each, so
    # the highest touched index is 8 + 3 = 11.
    assert record["nonces_remaining"] == 64 - 11
    assert record["feldman_remaining"] == 16


def test_inspect_flags_misnamed_blob_as_integrity_failure(store):
    paths = store.build([TEST_GROUP], nonces=4, feldman=1)
    assert len(paths) == 1
    source = store.path_for(TEST_GROUP)
    renamed = store.root / ("0" * 16 + store.SUFFIX)
    source.rename(renamed)
    records = store.inspect()
    assert len(records) == 1
    assert records[0]["ok"] is False
    assert "named" in records[0]["error"]


# ---------------------------------------------------------------------------
# Consume-forward: successive sweeps spend disjoint slices
# ---------------------------------------------------------------------------


def test_consume_forward_requires_online():
    with pytest.raises(ValueError, match="consume_forward"):
        SessionPool(consume_forward=True, **VOTING)


def test_consecutive_consume_forward_sweeps_spend_disjoint_slices(store):
    """The acceptance contract: run the same consume-forward sweep twice;
    the second run's absolute pool ranges start where the first stopped,
    and both replay seed-for-seed under --verify."""
    store.build([TEST_GROUP], nonces=64, feldman=16)

    def sweep():
        return ParallelSweep(
            executor="inline", material="disk", online=True,
            consume_forward=True, **VOTING,
        ).verify(range(2))

    first = sweep()
    second = sweep()
    assert first.matched and second.matched
    plan_one = first.report.online_plan
    plan_two = second.report.online_plan
    assert plan_one.consume_forward and plan_two.consume_forward
    one_end = plan_one.nonce_offset + plan_one.required_pools()["nonces"]
    assert plan_one.nonce_offset == 0
    assert plan_two.nonce_offset == one_end
    # Slot-level view: every slice of run two sits past every slice of
    # run one, for both pools.
    for slot in range(2):
        (n_lo_1, n_hi_1), (f_lo_1, f_hi_1) = plan_one.ranges_for(slot)
        (n_lo_2, _), (f_lo_2, _) = plan_two.ranges_for(slot)
        assert n_lo_2 >= one_end > n_hi_1 - 1 >= n_lo_1
        assert f_lo_2 >= f_hi_1 - 1 >= f_lo_1
    # And the ledger's high mark covers both reservations.
    ledger = store.ledger(plan_two.fingerprint)
    assert ledger.nonce_high == plan_two.nonce_offset + plan_two.required_pools()["nonces"]


def test_online_without_consume_forward_warns_on_prior_spends(store):
    """The advisory-ledger footgun: a classic online sweep over a ledger
    that already records spends is about to re-spend them — warn."""
    store.build([TEST_GROUP], nonces=64, feldman=16)
    fingerprint = group_fingerprint(TEST_GROUP)
    store.record_spend(fingerprint, nonces=6, nonce_high=6, material_seed=0)
    with pytest.warns(RuntimeWarning, match="re-spends from index 0"):
        OnlinePlan.for_tasks([0, 1], store=store)
    # A clean ledger stays quiet.
    (store.root / f"{fingerprint}{store.SUFFIX}.spent").unlink()
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        OnlinePlan.for_tasks([0, 1], store=store)


def test_watermark_crossing_sweep_replenishes_exactly_once(store):
    """A sweep that drives remaining capacity under the watermark causes
    one replenishment; the grown pools still pass inspect."""
    from repro.runtime import Replenisher

    store.build([TEST_GROUP], nonces=24, feldman=8)
    verdict = ParallelSweep(
        executor="inline", material="disk", online=True,
        consume_forward=True, **VOTING,
    ).verify(range(2))
    assert verdict.matched
    rep = Replenisher(store=store)
    rep.observe(verdict.report.online_spend)
    first = rep.maybe_replenish()
    assert first is not None and first["mode"] == "extend"
    assert rep.maybe_replenish() is None  # hysteresis: exactly once
    record = next(r for r in store.inspect() if r["fingerprint"] == first["fingerprint"])
    assert record["ok"]
    assert record["nonces"] == first["pool_nonces"] > 24


def test_cli_sweep_consume_forward_replenish_round_trip(store, capsys):
    import json

    from repro.cli import main

    assert main(["material", "build", "--nonces", "24", "--feldman", "8"]) == 0
    capsys.readouterr()
    argv = [
        "sweep", "--sessions", "2", "--workload", "voting",
        "--executor", "inline", "--material", "disk",
        "--online", "--consume-forward", "--replenish", "--verify", "--json",
    ]
    assert main(argv) == 0
    one = json.loads(capsys.readouterr().out)
    assert one["digests_match"] is True
    assert one["plan"]["consume_forward"] is True
    assert main(argv) == 0
    two = json.loads(capsys.readouterr().out)
    assert two["digests_match"] is True
    # The pools grew (or the ledger advanced) between runs; either way
    # the store still passes inspect cleanly afterwards.
    assert main(["material", "inspect"]) == 0


def test_cli_sweep_replenish_requires_online(store, capsys):
    from repro.cli import main

    assert main(["sweep", "--sessions", "2", "--replenish"]) == 2
    assert "--online" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_material_build_for_sweep_sizes_pools(store, capsys):
    from repro.cli import main

    assert main(["material", "build", "--for-sweep", "6", "--feldman", "2"]) == 0
    out = capsys.readouterr().out
    assert "sized for a 6-task online sweep: 128 nonces, 12 feldman" in out
    record = next(r for r in store.inspect() if r["bits"] == 256)
    assert record["nonces"] == 128  # --nonces default already covers 6*8
    assert record["feldman"] == 12


def test_cli_sweep_online_verify_json(store, capsys):
    import json

    from repro.cli import main

    assert main(["material", "build", "--for-sweep", "6"]) == 0
    capsys.readouterr()
    code = main([
        "sweep", "--sessions", "6", "--workload", "voting",
        "--executor", "process", "--workers", "2",
        "--material", "shared", "--online", "--verify", "--json",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["digests_match"] is True
    assert payload["plan"]["online"] is True
    assert payload["report"]["online"] is True
    assert payload["report"]["nonces_spent"] == 6 * 4  # one per ballot, n=4
    assert payload["reference"]["nonces_spent"] == 6 * 4


def test_cli_sweep_online_requires_pool_material(capsys):
    from repro.cli import main

    assert main(["sweep", "--sessions", "2", "--online"]) == 2
    assert "material" in capsys.readouterr().err


def test_cli_bench_online_skips_digest_comparison(store, capsys):
    from repro.cli import main

    store.build([TEST_GROUP], nonces=64, feldman=8)
    code = main([
        "bench", "--sessions", "3", "--n", "3", "--executor", "inline",
        "--material", "disk", "--online", "--trace", "full", "--compare",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "digest-pinned separately" in out
    assert "match sequential reference" not in out


def test_cli_scenarios_online_smoke(store, capsys):
    from repro.cli import main

    store.build([TEST_GROUP], nonces=64, feldman=8)
    code = main([
        "scenarios", "run", "--cell", "ubc/", "--material", "disk", "--online",
    ])
    assert code == 0
    assert "scenario matrix" in capsys.readouterr().out


def test_cli_material_inspect_misnamed_blob_exits_nonzero(store, capsys):
    from repro.cli import main

    store.build([TEST_GROUP], nonces=2, feldman=1)
    store.path_for(TEST_GROUP).rename(store.root / ("f" * 16 + store.SUFFIX))
    assert main(["material", "inspect"]) == 1
    captured = capsys.readouterr()
    assert "INTEGRITY" in captured.err
