"""Async backend and service host: concurrency, cancellation, leasing.

The differential suite pins the ``async`` driver's digest contract;
this module covers the *service* half of the tentpole: a thousand
coroutine sessions interleaving on one loop, cancellation tearing a
round down without leaking tasks, per-session online-pool leases that
can never overlap, and the sync facades refusing misuse.
"""

import asyncio
import warnings
from types import SimpleNamespace

import pytest

from repro.core import build_voting_stack
from repro.runtime import (
    AsyncRoundDriver,
    AsyncSessionHost,
    HostSlotAllocator,
    OnlinePlan,
    SweepConfig,
    VirtualClock,
    async_voting_session,
    online_ranges_disjoint,
    run_voting_trial,
)


async def _toy_session(seed):
    """Heterogeneous-duration no-op workload: seed decides the hop count.

    Homogeneous sessions finish in admission order even when perfectly
    interleaved, so concurrency evidence needs *uneven* durations.
    """
    hops = (seed % 7) + 1
    for _ in range(hops):
        await asyncio.sleep(0)
    return (seed, hops)


def _toy_host(**kwargs):
    config = SweepConfig(backend="async", executor="inline", warmup=False)
    return AsyncSessionHost(_toy_session, config=config, **kwargs)


# ---------------------------------------------------------------------------
# service-mode concurrency


def test_host_runs_1000_concurrent_sessions():
    report = _toy_host().run(range(1000))
    assert report.sessions == 1000
    # Results stay in submission order whatever the interleaving did.
    assert report.results == [(seed, (seed % 7) + 1) for seed in range(1000)]
    # Every session finished exactly once...
    assert sorted(report.completion_order) == list(range(1000))
    # ...and mostly out of submission order: short sessions overtake
    # long ones, which only happens if they genuinely interleave.
    assert report.interleaved > 500
    summary = report.summary()
    assert summary["sessions"] == 1000
    assert summary["sessions_per_s"] > 0


def test_duration_bounds_admission_not_completion():
    # A zero budget admits nothing; already-admitted work would still run.
    report = _toy_host().run(range(50), duration_s=0.0)
    assert report.sessions == 0
    with pytest.raises(ValueError, match="empty host report"):
        report.summary()


def test_hosted_voting_sessions_match_sync_reference():
    host = AsyncSessionHost(
        async_voting_session,
        config=SweepConfig(backend="async", executor="inline"),
    )
    report = host.run(range(4))
    assert report.sessions == 4
    for seed, result in zip(range(4), report.results):
        reference = run_voting_trial(seed)
        assert result.digest == reference.digest
        assert result.outputs == reference.outputs


# ---------------------------------------------------------------------------
# cancellation / teardown


def test_cancellation_mid_round_leaves_no_leaked_tasks():
    async def scenario():
        stack = build_voting_stack(voters=3, mode="hybrid", seed=7, backend="async")
        driver = stack.env.driver
        assert isinstance(driver, AsyncRoundDriver)
        for authority in stack.authorities.values():
            authority.deal()
        task = asyncio.get_running_loop().create_task(driver.run_rounds_async(10))
        for _ in range(4):  # let the round get mid-flight
            await asyncio.sleep(0)
        task.cancel()
        with pytest.raises(asyncio.CancelledError):
            await task
        # The conductor's teardown reaped every step task before the
        # cancellation propagated: nothing else is left on the loop.
        leaked = [
            other
            for other in asyncio.all_tasks()
            if other is not asyncio.current_task() and not other.done()
        ]
        assert leaked == []
        assert driver.clock.pending == 0
        driver.close()

    asyncio.run(scenario())


def test_sync_facades_refuse_inside_a_running_loop():
    async def scenario():
        with pytest.raises(RuntimeError, match="serve"):
            _toy_host().run([1])
        stack = build_voting_stack(voters=3, mode="hybrid", seed=3, backend="async")
        with pytest.raises(RuntimeError, match="run_round_async"):
            stack.env.driver.run_round()
        stack.env.driver.close()

    asyncio.run(scenario())


def test_driver_consumes_mirrored_network_tokens():
    # The event-driven evidence: scheduler deliveries reach steps as
    # awaited mailbox wake-ups, not polling.  Dolev–Strong is the
    # workload that routes through SyncNetwork (hence the scheduler).
    from repro.protocols.dolev_strong import make_dolev_strong_instance
    from repro.uc.environment import Environment
    from repro.uc.session import Session

    session = Session(seed=1, backend="async")
    parties = make_dolev_strong_instance(
        session, ["P0", "P1", "P2", "P3"], "P0", t=2
    )
    env = Environment(session)
    assert isinstance(env.driver, AsyncRoundDriver)
    for party in parties.values():
        party.arm(session.clock.time)
    parties["P0"].broadcast(b"token-proof")
    env.run_rounds(4)
    assert env.driver.net_tokens > 0
    env.driver.close()


def test_virtual_clock_fires_in_deadline_then_registration_order():
    async def scenario():
        clock = VirtualClock()
        order = []

        async def waiter(future, tag):
            await future
            order.append(tag)

        loop = asyncio.get_running_loop()
        tasks = [
            loop.create_task(waiter(clock.sleep(delay), tag))
            for delay, tag in ((2.0, "late"), (1.0, "early"), (1.0, "tie"))
        ]
        await asyncio.sleep(0)  # register all three deadlines
        while clock.fire_next():
            await asyncio.sleep(0)
        await asyncio.gather(*tasks)
        assert order == ["early", "tie", "late"]
        assert clock.time == 2.0
        assert clock.pending == 0

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# host construction guards


def test_coroutine_runner_requires_inline_executor():
    with pytest.raises(ValueError, match="inline"):
        AsyncSessionHost(
            async_voting_session,
            config=SweepConfig(backend="async", executor="thread"),
        )


def test_session_timeout_must_be_positive():
    with pytest.raises(ValueError, match="session_timeout_s"):
        _toy_host(session_timeout_s=0.0)


# ---------------------------------------------------------------------------
# online leasing: disjoint by construction


def _plan():
    # 16 nonces / 8 feldman entries at 4 / 2 per task: capacity 4 slots.
    return OnlinePlan(
        fingerprint="test-plan",
        assignments=((0, 0), (1, 1), (2, 2)),
        nonces_per_task=4,
        feldman_per_task=2,
        pool_nonces=16,
        pool_feldman=8,
    )


def test_host_slot_allocator_leases_planned_then_fresh_slots():
    allocator = HostSlotAllocator(_plan())
    assert allocator.capacity == 4

    lease = allocator.lease(1)
    assert lease.assignments == ((1, 1),)
    assert lease.nonces_per_task == 4  # a view, not a new plan shape
    # Replay semantics: the same key keeps its slot.
    assert allocator.lease(1).assignments == ((1, 1),)

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        # First unseen key: the next slot past the plan's top, still in
        # capacity, so no warning.
        assert allocator.lease("walk-in").slot_of("walk-in") == 3

    with pytest.warns(RuntimeWarning, match="capacity"):
        spill = allocator.lease("beyond")
    assert spill.slot_of("beyond") == 4  # never reused, just past the pools
    assert allocator.leased == 3


def _spent(online):
    return SimpleNamespace(online=online)


def test_online_ranges_disjoint_checks_each_pool_separately():
    results = [
        _spent({"nonce_range": (0, 8), "nonces_spent": 8,
                "feldman_range": (0, 4), "feldman_spent": 4}),
        _spent({"nonce_range": (8, 16), "nonces_spent": 6,
                "feldman_range": (4, 8), "feldman_spent": 2}),
        _spent(None),  # offline session: no record, skipped
        _spent({"nonce_range": (16, 24), "nonces_spent": 0}),  # sampled only
    ]
    # Session 0's nonce slice and feldman slice share indices — different
    # pools, not a double-spend.  2 nonce spans + 2 feldman spans checked.
    assert online_ranges_disjoint(results) == (True, 4)


def test_online_ranges_disjoint_flags_overlap_in_either_pool():
    nonce_clash = [
        _spent({"nonce_range": (0, 8), "nonces_spent": 8}),
        _spent({"nonce_range": (4, 12), "nonces_spent": 8}),
    ]
    disjoint, checked = online_ranges_disjoint(nonce_clash)
    assert not disjoint and checked == 2

    feldman_clash = [
        _spent({"feldman_range": (0, 4), "feldman_spent": 4}),
        _spent({"feldman_range": (3, 7), "feldman_spent": 4}),
    ]
    disjoint, checked = online_ranges_disjoint(feldman_clash)
    assert not disjoint and checked == 2
