"""Gen00-style commit-then-reveal baseline: constant rounds, weaker notion."""

from repro.baselines.gennaro import GennaroSBCNetwork, commit_to
from repro.baselines.hevia import HeviaCoalitionAttack
from repro.uc.environment import Environment
from repro.uc.session import Session


def _run(n=4, seed=1, actions=None, extra_rounds=4):
    session = Session(seed=seed)
    net = GennaroSBCNetwork.build(session, n=n)
    env = Environment(session)
    env.run_round(actions or [])
    env.run_rounds(extra_rounds)
    return session, net


def test_honest_run_delivers_all():
    _s, net = _run(
        actions=[
            ("P0", lambda p: p.broadcast(b"alpha")),
            ("P1", lambda p: p.broadcast(b"beta")),
        ]
    )
    for party in net.parties.values():
        assert party.outputs == [("Broadcast", [b"alpha", b"beta"])]


def test_constant_round_count():
    """Delivery at reveal_round + 1, regardless of n."""
    for n in (3, 5, 7):
        session, net = _run(n=n, actions=[("P0", lambda p: p.broadcast(b"m"))])
        outputs = session.log.filter(kind="output")
        assert outputs
        assert {e.time for e in outputs} == {net.reveal_round + 1}


def test_aborting_committer_recovered_from_backups():
    """A committer silent in the reveal phase is reconstructed by echoes."""
    session = Session(seed=3)
    net = GennaroSBCNetwork.build(session, n=4)
    env = Environment(session)
    env.run_round(
        [
            ("P0", lambda p: p.broadcast(b"recoverable")),
            ("P1", lambda p: p.broadcast(b"present")),
        ]
    )
    env.run_rounds(1)
    session.corrupt("P0")  # aborts before the reveal round
    env.run_rounds(3)
    batch = net.parties["P1"].outputs[-1][1]
    assert batch == [b"present", b"recoverable"]


def test_unrecoverable_abort_drops_out():
    """The Gen00 weakness: an instantly-corrupted committer that never
    dealt backups simply vanishes from the output (FSBC would have had
    nothing recorded either; the *contrast* is that a Gen00 committer can
    abort AFTER binding, which FSBC forbids post-lock)."""
    session = Session(seed=4)
    net = GennaroSBCNetwork.build(session, n=4)
    env = Environment(session)
    session.corrupt("P3")
    # P3 commits via the adversary but deals no backup shares:
    digest = commit_to(b"ghost", b"blinding")
    net.ubc.adv_broadcast("P3", ("Gen00Commit", "P3", digest, (1,)))
    env.run_round([("P0", lambda p: p.broadcast(b"real"))])
    env.run_rounds(4)
    batch = net.parties["P0"].outputs[-1][1]
    assert batch == [b"real"]  # the ghost committer dropped out


def test_forged_reveal_rejected():
    session = Session(seed=5)
    net = GennaroSBCNetwork.build(session, n=3)
    env = Environment(session)
    env.run_round([("P0", lambda p: p.broadcast(b"original"))])
    session.corrupt("P2")
    # P2 claims P0 revealed something else; the commitment check kills it.
    net.ubc.adv_broadcast("P2", ("Gen00Reveal", "P0", b"forged", b"wrong"))
    env.run_rounds(4)
    batch = net.parties["P1"].outputs[-1][1]
    assert batch == [b"original"]


def test_same_n_over_2_cliff_as_hevia():
    """The coalition attack from the Hevia baseline works here verbatim:
    backup shares are a VSS of the decommitment."""
    n = 5
    for coalition_size, should_break in ((2, False), (3, True)):
        coalition = [f"P{i}" for i in range(n - coalition_size, n)]
        attack = HeviaCoalitionAttack(coalition, copier=None)
        session = Session(seed=6, adversary=attack)
        _net = GennaroSBCNetwork.build(session, n=n)
        env = Environment(session)

        # Adapt the Hevia attack's share hoovering to the Gen00 wire tag.
        collected = {}


        def on_leak(source, detail, _collected=collected, _attack=attack):
            if (
                isinstance(detail, tuple)
                and detail
                and detail[0] == "Deliver"
                and detail[1] in _attack.coalition
            ):
                inner = detail[2]
                if (
                    isinstance(inner, tuple)
                    and inner
                    and inner[0] == "P2P"
                    and isinstance(inner[1], tuple)
                    and inner[1][0] == "Gen00Share"
                ):
                    _, committer, x, y = inner[1]
                    _collected.setdefault(committer, {})[x] = y

        attack.on_leak = on_leak
        env.run_round([("P0", lambda p: p.broadcast(b"secret-commit"))])
        threshold = (n - 1) // 2
        reconstructed = False
        for _committer, points in collected.items():
            if len(points) >= threshold + 1:
                from repro.baselines.hevia import scalar_to_message
                from repro.crypto.groups import TEST_GROUP
                from repro.crypto.shamir import Share, reconstruct_secret

                shares = [Share(x=x, y=y) for x, y in points.items()]
                packed = reconstruct_secret(shares[: threshold + 1], TEST_GROUP.q)
                decommitment = scalar_to_message(packed)
                if decommitment and decommitment.startswith(b"secret-commit"):
                    reconstructed = True
        assert reconstructed == should_break
