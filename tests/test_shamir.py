"""Shamir sharing and Feldman VSS: reconstruction, thresholds, verification."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.groups import TEST_GROUP
from repro.crypto.shamir import (
    Share,
    feldman_share,
    feldman_verify,
    reconstruct_secret,
    share_secret,
)

PRIME = TEST_GROUP.q


def test_share_reconstruct(rng):
    shares = share_secret(12345, threshold=2, parties=5, modulus=PRIME, rng=rng)
    assert reconstruct_secret(shares[:3], PRIME) == 12345


def test_any_subset_of_threshold_plus_one(rng):
    secret = 777
    shares = share_secret(secret, threshold=2, parties=6, modulus=PRIME, rng=rng)
    for subset in ([0, 1, 2], [3, 4, 5], [0, 2, 4], [1, 3, 5]):
        assert reconstruct_secret([shares[i] for i in subset], PRIME) == secret


def test_threshold_shares_do_not_determine_secret(rng):
    # With t shares, every candidate secret remains consistent: check that
    # two different secrets can produce the same t-share view.
    shares_a = share_secret(1, threshold=2, parties=5, modulus=PRIME, rng=rng)
    # Interpolating only 2 (= t) points plus a guessed secret point always
    # succeeds, so reconstruction from t points is meaningless:
    partial = shares_a[:2]
    for guess in (0, 1, 99):
        candidate = reconstruct_secret(partial + [Share(x=0, y=guess)], PRIME)
        assert candidate == guess  # the guess fully dictates the "secret"


def test_zero_threshold(rng):
    shares = share_secret(55, threshold=0, parties=3, modulus=PRIME, rng=rng)
    assert all(share.y == 55 for share in shares)


def test_invalid_parameters(rng):
    with pytest.raises(ValueError):
        share_secret(1, threshold=3, parties=3, modulus=PRIME, rng=rng)
    with pytest.raises(ValueError):
        share_secret(1, threshold=-1, parties=3, modulus=PRIME, rng=rng)
    with pytest.raises(ValueError):
        share_secret(1, threshold=1, parties=10, modulus=7, rng=rng)


def test_conflicting_shares_rejected(rng):
    with pytest.raises(ValueError):
        reconstruct_secret([Share(1, 5), Share(1, 6), Share(2, 7)], PRIME)


def test_feldman_share_verifies(rng):
    shares, commitment = feldman_share(TEST_GROUP, 999, 2, 5, rng)
    for share in shares:
        assert feldman_verify(TEST_GROUP, share, commitment)


def test_feldman_detects_tampering(rng):
    shares, commitment = feldman_share(TEST_GROUP, 999, 2, 5, rng)
    bad = Share(x=shares[0].x, y=(shares[0].y + 1) % TEST_GROUP.q)
    assert not feldman_verify(TEST_GROUP, bad, commitment)


def test_feldman_reconstructs(rng):
    shares, _ = feldman_share(TEST_GROUP, 31337, 1, 4, rng)
    assert reconstruct_secret(shares[:2], TEST_GROUP.q) == 31337


def test_feldman_commitment_degree(rng):
    _, commitment = feldman_share(TEST_GROUP, 1, 3, 5, rng)
    assert commitment.degree == 3


@settings(max_examples=25, deadline=None)
@given(
    secret=st.integers(min_value=0, max_value=PRIME - 1),
    threshold=st.integers(min_value=0, max_value=4),
    extra=st.integers(min_value=1, max_value=4),
    seed=st.integers(),
)
def test_reconstruction_property(secret, threshold, extra, seed):
    rng = random.Random(seed)
    parties = threshold + extra
    shares = share_secret(secret, threshold, parties, PRIME, rng)
    chosen = rng.sample(shares, threshold + 1)
    assert reconstruct_secret(chosen, PRIME) == secret
