"""Astrolabous TLE: round-trips, sequentiality, witness validation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hashing import hash_bytes
from repro.tle.astrolabous import (
    PuzzleError,
    PuzzleSolver,
    TLECiphertext,
    ast_decrypt,
    ast_encrypt,
    ast_solve,
)


def _hash(x: bytes) -> bytes:
    return hash_bytes(x, domain=b"test-oracle")


def test_roundtrip(rng):
    ct = ast_encrypt(b"the message", difficulty=3, rate=2, hash_fn=_hash, rng=rng)
    witness = ast_solve(ct, _hash)
    assert ast_decrypt(ct, witness) == b"the message"


def test_chain_length(rng):
    ct = ast_encrypt(b"m", difficulty=3, rate=4, hash_fn=_hash, rng=rng)
    assert ct.length == 12
    assert len(ct.chain) == 13


def test_solving_takes_exactly_length_queries(rng):
    ct = ast_encrypt(b"m", difficulty=2, rate=3, hash_fn=_hash, rng=rng)
    queries = 0

    def counting_hash(x: bytes) -> bytes:
        nonlocal queries
        queries += 1
        return _hash(x)

    ast_solve(ct, counting_hash)
    assert queries == ct.length == 6


def test_sequentiality_each_query_depends_on_previous(rng):
    """The j-th query is unknowable before the (j-1)-th response."""
    ct = ast_encrypt(b"m", difficulty=2, rate=2, hash_fn=_hash, rng=rng)
    solver = PuzzleSolver(ct)
    seen = []
    while not solver.solved:
        query = solver.next_query()
        seen.append(query)
        solver.absorb(_hash(query))
    # Each query (after the first) is chain[j] ⊕ H(previous query) — so
    # withholding the hash response makes the next query underivable from
    # the ciphertext alone:
    for j in range(1, len(seen)):
        from repro.crypto.hashing import xor_bytes

        assert seen[j] == xor_bytes(ct.chain[j], _hash(seen[j - 1]))
        assert seen[j] != ct.chain[j]


def test_wrong_witness_rejected(rng):
    ct = ast_encrypt(b"m", difficulty=1, rate=2, hash_fn=_hash, rng=rng)
    witness = list(ast_solve(ct, _hash))
    witness[-1] = bytes(32)
    with pytest.raises(PuzzleError):
        ast_decrypt(ct, witness)


def test_wrong_witness_length_rejected(rng):
    ct = ast_encrypt(b"m", difficulty=1, rate=2, hash_fn=_hash, rng=rng)
    witness = ast_solve(ct, _hash)
    with pytest.raises(PuzzleError):
        ast_decrypt(ct, witness[:-1])


def test_difficulty_zero_opens_immediately(rng):
    ct = ast_encrypt(b"instant", difficulty=0, rate=4, hash_fn=_hash, rng=rng)
    assert ct.length == 0
    assert ast_decrypt(ct, ()) == b"instant"


def test_solver_refuses_past_end(rng):
    ct = ast_encrypt(b"m", difficulty=1, rate=1, hash_fn=_hash, rng=rng)
    solver = PuzzleSolver(ct)
    solver.step(_hash, queries=10)
    assert solver.solved
    with pytest.raises(PuzzleError):
        solver.next_query()


def test_solver_step_budget(rng):
    ct = ast_encrypt(b"m", difficulty=3, rate=2, hash_fn=_hash, rng=rng)
    solver = PuzzleSolver(ct)
    assert solver.step(_hash, queries=2) == 2
    assert solver.position == 2
    assert not solver.solved
    assert solver.step(_hash, queries=100) == 4
    assert solver.solved


def test_explicit_randomness_must_match_length(rng):
    with pytest.raises(PuzzleError):
        ast_encrypt(
            b"m", difficulty=2, rate=2, hash_fn=_hash, rng=rng,
            randomness=[bytes(32)] * 3,
        )


def test_malformed_chain_rejected():
    with pytest.raises(PuzzleError):
        TLECiphertext(difficulty=1, rate=2, body=b"", chain=(bytes(32),))
    with pytest.raises(PuzzleError):
        TLECiphertext(difficulty=1, rate=2, body=b"", chain=(b"short",) * 3)
    with pytest.raises(PuzzleError):
        TLECiphertext(difficulty=-1, rate=2, body=b"", chain=())


@settings(max_examples=20, deadline=None)
@given(
    message=st.binary(max_size=128),
    difficulty=st.integers(min_value=0, max_value=4),
    rate=st.integers(min_value=1, max_value=4),
    seed=st.integers(),
)
def test_roundtrip_property(message, difficulty, rate, seed):
    rng = random.Random(seed)
    ct = ast_encrypt(message, difficulty=difficulty, rate=rate, hash_fn=_hash, rng=rng)
    assert ast_decrypt(ct, ast_solve(ct, _hash)) == message
