"""Adversarial voters and authorities: every rejection path of ΠSTVS."""


from repro.core import build_voting_stack
from repro.crypto.zkp import ballot_prove
from repro.uc.encoding import encode


def _setup(voters=3, seed=81, phi=4, delta=2):
    stack = build_voting_stack(voters=voters, mode="hybrid", seed=seed, phi=phi, delta=delta)
    for authority in stack.authorities.values():
        authority.deal()
    stack.run_rounds(1)
    return stack


def test_unsigned_ballot_rejected():
    """A corrupted voter casts a ballot with a junk signature."""
    stack = _setup()
    session = stack.session
    session.corrupt("V2")
    victim = stack.parties["V2"]
    group = victim.group
    seed_elt = victim._seed()
    exponent = victim.election.exponent_of("yes")
    ballot = group.mul(
        group.exp(seed_elt, victim.secret_exponent), group.power_of_g(exponent)
    )
    proof = ballot_prove(
        group, seed_elt, victim.verification_keys["V2"], ballot,
        victim.secret_exponent, exponent, victim.election.choices,
        session.rng, key_base=victim.w,
    )
    stack.service.adv_broadcast("V2", ("Ballot", "V2", ballot, proof, b"junk-sig"))
    stack.parties["V0"].vote("yes")
    stack.parties["V1"].vote("no")
    stack.run_until_result()
    # V2's unsigned ballot is dropped -> a voter is missing -> no tally.
    for party in stack.parties.values():
        if party.corrupted:
            continue
        assert party.result is None
        assert "missing" in party.tally_failure and "V2" in party.tally_failure


def test_wrong_exponent_ballot_rejected():
    """A corrupted voter votes with a secret that is not its registered one."""
    stack = _setup()
    session = stack.session
    session.corrupt("V2")
    victim = stack.parties["V2"]
    group = victim.group
    seed_elt = victim._seed()
    fake_secret = group.random_scalar(session.rng)
    exponent = victim.election.exponent_of("yes")
    ballot = group.mul(group.exp(seed_elt, fake_secret), group.power_of_g(exponent))
    proof = ballot_prove(
        group, seed_elt, group.exp(victim.w, fake_secret), ballot,
        fake_secret, exponent, victim.election.choices,
        session.rng, key_base=victim.w,
    )
    signature = victim.certs["V2"].sign("V2", encode((ballot, proof, "V2")))
    stack.service.adv_broadcast("V2", ("Ballot", "V2", ballot, proof, signature))
    stack.parties["V0"].vote("yes")
    stack.parties["V1"].vote("no")
    stack.run_until_result()
    # The proof verifies against the *fake* key, but voters check against
    # the registered verification key w_{V2} -> rejected -> missing.
    for party in stack.parties.values():
        if party.corrupted:
            continue
        assert party.result is None


def test_malformed_ballot_payloads_ignored():
    stack = _setup()
    session = stack.session
    session.corrupt("V2")
    for garbage in (
        "not-a-ballot",
        ("Ballot", "V2"),  # wrong arity
        ("Ballot", "ghost-voter", 1, None, b""),
        ("Ballot", "V0", 1, None, b""),  # claims another voter, no proof
    ):
        stack.service.adv_broadcast("V2", garbage)
    stack.parties["V0"].vote("yes")
    stack.parties["V1"].vote("no")
    stack.run_until_result()
    for party in stack.parties.values():
        if party.corrupted:
            continue
        assert party.result is None  # V2 still missing; garbage ignored


def test_duplicate_ballot_first_counts():
    """A corrupted voter casting twice cannot double-count."""
    stack = _setup()
    session = stack.session
    session.corrupt("V2")
    victim = stack.parties["V2"]

    def make(choice):
        group = victim.group
        seed_elt = victim._seed()
        exponent = victim.election.exponent_of(choice)
        ballot = group.mul(
            group.exp(seed_elt, victim.secret_exponent), group.power_of_g(exponent)
        )
        proof = ballot_prove(
            group, seed_elt, victim.verification_keys["V2"], ballot,
            victim.secret_exponent, exponent, victim.election.choices,
            session.rng, key_base=victim.w,
        )
        signature = victim.certs["V2"].sign("V2", encode((ballot, proof, "V2")))
        return ("Ballot", "V2", ballot, proof, signature)

    stack.service.adv_broadcast("V2", make("yes"))
    stack.service.adv_broadcast("V2", make("no"))
    stack.parties["V0"].vote("yes")
    stack.parties["V1"].vote("no")
    stack.run_until_result()
    results = {
        pid: party.result
        for pid, party in stack.parties.items()
        if not party.corrupted
    }
    # Exactly one of V2's ballots counted (the first in batch order), and
    # all honest voters agree on which:
    assert len(set(map(str, results.values()))) == 1
    tally = next(iter(results.values()))
    assert tally is not None and sum(tally.values()) == 3


def test_cheating_authority_detected_by_scrutineers():
    """An authority whose shares do not sum to zero is caught."""
    stack = build_voting_stack(voters=3, mode="hybrid", seed=82)
    session = stack.session
    # Deal honestly from A0, dishonestly from A1 (tamper one commitment).
    authorities = list(stack.authorities.values())
    authorities[0].deal()
    bad = authorities[1]
    group, w = bad.skg.parameters()
    voters = bad.election.voters
    shares = [group.random_scalar(session.rng) for _ in voters]  # no zero-sum!
    from repro.protocols.voting_protocol import encrypt_share

    encrypted = {}
    commitments = {}
    for voter, share in zip(voters, shares):
        public = bad.pkg.public_key(voter) or bad.pkg.keygen(voter)[1]
        encrypted[voter] = encrypt_share(group, public, share, session.rng)
        commitments[voter] = group.exp(w, share)
    bad.rbc.broadcast(
        bad,
        ("Shares", tuple(sorted(encrypted.items())), tuple(sorted(commitments.items()))),
    )
    stack.run_rounds(1)
    for voter in stack.parties.values():
        assert voter.secret_exponent is None  # setup rejected
        rejects = stack.session.log.filter(kind="scrutineer_reject")
    assert rejects, "scrutineer check must fire"
