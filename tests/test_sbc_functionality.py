"""FSBC (Figure 13), clause by clause: the ideal object's exact behavior."""

import pytest

from repro.functionalities.dummy import DummyBroadcastParty
from repro.functionalities.sbc import SimultaneousBroadcast
from repro.uc.environment import Environment
from repro.uc.session import Session


def _world(phi=3, delta=2, alpha=1, n=3, seed=1):
    session = Session(seed=seed)
    sbc = SimultaneousBroadcast(session, phi=phi, delta=delta, alpha=alpha)
    parties = {
        f"P{i}": DummyBroadcastParty(session, f"P{i}", sbc) for i in range(n)
    }
    return session, sbc, parties, Environment(session)


def test_period_opens_at_first_request():
    session, sbc, parties, env = _world()
    assert sbc.t_start is None
    env.run_rounds(2)
    sbc.broadcast(parties["P0"], b"m")
    assert sbc.t_start == 2 and sbc.t_end == 5


def test_adv_broadcast_opens_period_too():
    session, sbc, parties, env = _world()
    session.corrupt("P2")
    sbc.adv_broadcast("P2", b"evil-first")
    assert sbc.t_start == 0


def test_requests_after_tend_discarded():
    session, sbc, parties, env = _world(phi=2)
    sbc.broadcast(parties["P0"], b"in")
    env.run_rounds(2)  # now Cl = t_end
    assert sbc.broadcast(parties["P1"], b"out") is None
    env.run_rounds(3)
    batches = [o[1] for o in parties["P2"].outputs if o[0] == "Broadcast"]
    assert batches == [[b"in"]]


def test_honest_leak_is_length_only():
    session, sbc, parties, env = _world()
    sbc.broadcast(parties["P0"], b"secret-vote")
    leak = [d for _f, d in session.adversary.observed if d[0] == "Sender"][0]
    assert leak[2][0] == "len" and isinstance(leak[2][1], int)


def test_corrupted_leak_includes_message():
    session, sbc, parties, env = _world()
    session.corrupt("P2")
    sbc.adv_broadcast("P2", b"adversarial")
    leak = [d for _f, d in session.adversary.observed if d[0] == "Sender"][-1]
    assert leak[2] == b"adversarial"


def test_allow_replaces_only_corrupted_nonfinal():
    session, sbc, parties, env = _world()
    tag_honest = sbc.broadcast(parties["P0"], b"honest")
    session.corrupt("P2")
    tag_corrupt = sbc.adv_broadcast("P2", b"original-evil")
    # honest sender's record is untouchable:
    assert not sbc.adv_allow(tag_honest, b"evil", "P0")
    # the corrupted sender's adv_broadcast record is already final
    # (flag 1 at insertion, per the figure):
    assert not sbc.adv_allow(tag_corrupt, b"replaced", "P2")


def test_allow_on_corrupted_after_honest_request():
    """A sender corrupted after requesting: its flag-0 record is
    replaceable until t_end (the non-atomic window)."""
    session, sbc, parties, env = _world()
    tag = sbc.broadcast(parties["P0"], b"was-honest")
    session.corrupt("P0")
    assert sbc.adv_allow(tag, b"replaced", "P0")
    env.run_rounds(6)
    batches = [o[1] for o in parties["P1"].outputs if o[0] == "Broadcast"]
    assert batches == [[b"replaced"]]


def test_corrupted_without_allow_is_dropped():
    """A flag-0 record whose sender is corrupted at t_end is discarded —
    the simulator decides whether such messages appear."""
    session, sbc, parties, env = _world()
    sbc.broadcast(parties["P0"], b"will-vanish")
    sbc.broadcast(parties["P1"], b"stays")
    session.corrupt("P0")
    env.run_rounds(6)
    batches = [o[1] for o in parties["P2"].outputs if o[0] == "Broadcast"]
    assert batches == [[b"stays"]]


def test_corruption_request_lists_pending_of_corrupted():
    session, sbc, parties, env = _world()
    tag = sbc.broadcast(parties["P0"], b"mine")
    assert sbc.adv_corruption_request() == []
    session.corrupt("P0")
    pending = sbc.adv_corruption_request()
    assert [(t, m) for t, m, _p, _cl in pending] == [(tag, b"mine")]


def test_preview_leak_at_tend_plus_delta_minus_alpha():
    session, sbc, parties, env = _world(phi=3, delta=2, alpha=1)
    sbc.broadcast(parties["P0"], b"m")
    env.run_rounds(6)
    previews = [
        e
        for e in session.log.filter(kind="leak", source="FSBC")
        if e.detail and e.detail[0] == "Broadcast"
    ]
    assert previews and previews[0].time == 3 + 2 - 1


def test_alpha_bounds_validated():
    session = Session(seed=1)
    with pytest.raises(ValueError):
        SimultaneousBroadcast(session, phi=3, delta=2, alpha=3)
    with pytest.raises(ValueError):
        SimultaneousBroadcast(session, phi=0, delta=2, alpha=1)
