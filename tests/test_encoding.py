"""Canonical encoding: injectivity, round-trips, sort keys."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tle.astrolabous import TLECiphertext
from repro.uc.encoding import DecodeError, decode, encode, sort_key


def test_primitives_roundtrip():
    for value in (None, True, False, 0, -1, 2**100, b"", b"abc", "", "héllo", ()):
        assert decode(encode(value)) == value


def test_tuple_roundtrip():
    value = (1, (b"x", "y"), None, (True, (-5,)))
    assert decode(encode(value)) == value


def test_list_decodes_as_tuple():
    assert decode(encode([1, 2, 3])) == (1, 2, 3)


def test_bool_distinct_from_int():
    assert encode(True) != encode(1)
    assert encode(False) != encode(0)


def test_bytes_distinct_from_str():
    assert encode(b"a") != encode("a")


def test_distinct_values_distinct_encodings():
    values = [None, True, False, 0, 1, -1, b"", b"\x00", "", "\x00", (), (0,), ((),)]
    encodings = [encode(v) for v in values]
    assert len(set(encodings)) == len(encodings)


def test_concatenation_ambiguity_resolved():
    assert encode((b"ab", b"c")) != encode((b"a", b"bc"))


def test_unsupported_type_raises():
    with pytest.raises(TypeError):
        encode(object())
    with pytest.raises(TypeError):
        encode(1.5)


def test_trailing_bytes_rejected():
    with pytest.raises(DecodeError):
        decode(encode(1) + b"x")


def test_truncated_rejected():
    raw = encode((1, 2, 3))
    with pytest.raises(DecodeError):
        decode(raw[:-1])


def test_empty_rejected():
    with pytest.raises(DecodeError):
        decode(b"")


def test_unknown_tag_rejected():
    with pytest.raises(DecodeError):
        decode(b"Zjunk")


def test_registered_dataclass_roundtrip():
    ct = TLECiphertext(
        difficulty=1, rate=2, body=b"body", chain=tuple(bytes(32) for _ in range(3))
    )
    assert decode(encode(ct)) == ct


def test_sort_key_orders_consistently():
    values = [b"b", b"a", b"c"]
    assert sorted(values, key=sort_key) == [b"a", b"b", b"c"]


# -- property tests ---------------------------------------------------------

payloads = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**64), max_value=2**64)
    | st.binary(max_size=64)
    | st.text(max_size=32),
    lambda children: st.lists(children, max_size=4).map(tuple),
    max_leaves=12,
)


@given(payloads)
def test_roundtrip_property(value):
    assert decode(encode(value)) == value


@given(payloads, payloads)
def test_injectivity_property(a, b):
    if a != b:
        assert encode(a) != encode(b)
