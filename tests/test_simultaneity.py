"""Simultaneity (the paper's raison d'être), as an executable experiment.

The copy attack wins against plain UBC with probability 1 and degrades to
replay-noise against ΠSBC: before τ_rel the adversary's view contains TLE
ciphertexts and masks only, never an honest plaintext.
"""

import pytest

from repro.attacks.rushing import SBCCopyAttack, UBCCopyAttack
from repro.core import build_sbc_stack
from repro.functionalities.dummy import DummyBroadcastParty
from repro.functionalities.ubc import UnfairBroadcast
from repro.uc.environment import Environment
from repro.uc.session import Session

from tests.conftest import broadcast_action


def test_copy_attack_wins_on_ubc():
    attack = UBCCopyAttack(attacker="P2")
    session = Session(seed=1, adversary=attack)
    ubc = UnfairBroadcast(session)
    parties = {f"P{i}": DummyBroadcastParty(session, f"P{i}", ubc) for i in range(3)}
    Environment(session).run_round([("P0", broadcast_action(b"sealed-bid"))])
    received = [m for _, m, _ in parties["P1"].outputs]
    assert received.count(b"sealed-bid") == 2  # the copy landed


def test_copy_attack_can_outbid_on_ubc():
    """Correlation, not just copying: outbid the victim by one."""

    def outbid(message):
        return b"bid:" + str(int(message.split(b":")[1]) + 1).encode()

    attack = UBCCopyAttack(attacker="P2", transform=outbid)
    session = Session(seed=1, adversary=attack)
    ubc = UnfairBroadcast(session)
    parties = {f"P{i}": DummyBroadcastParty(session, f"P{i}", ubc) for i in range(3)}
    Environment(session).run_round([("P0", broadcast_action(b"bid:41"))])
    received = [m for _, m, _ in parties["P1"].outputs]
    assert b"bid:42" in received


@pytest.mark.parametrize("mode", ("hybrid", "composed"))
def test_sbc_adversary_never_sees_plaintext(mode):
    attack = SBCCopyAttack(
        attacker="P3", is_plaintext=lambda m: isinstance(m, bytes) and m.startswith(b"bid")
    )
    stack = build_sbc_stack(n=4, mode=mode, seed=13, adversary=attack)
    stack.parties["P0"].broadcast(b"bid:41")
    stack.parties["P1"].broadcast(b"bid:17")
    stack.run_until_delivery()
    # The attacker observed every leak of the whole stack and never an
    # honest plaintext before delivery:
    assert attack.plaintexts_seen == []


@pytest.mark.parametrize("mode", ("hybrid", "composed"))
def test_sbc_replay_of_ciphertext_is_futile(mode):
    attack = SBCCopyAttack(
        attacker="P3", is_plaintext=lambda m: isinstance(m, bytes) and m.startswith(b"bid")
    )
    stack = build_sbc_stack(n=4, mode=mode, seed=14, adversary=attack)
    stack.parties["P0"].broadcast(b"bid:41")
    stack.run_until_delivery()
    assert attack.replays > 0  # it tried
    for pid in ("P0", "P1", "P2"):
        batches = [o[1] for o in stack.parties[pid].outputs if o[0] == "Broadcast"]
        # the honest bid appears exactly once: the replay was dropped
        assert batches[-1].count(b"bid:41") == 1


def test_sbc_leaks_only_lengths_for_honest_messages():
    stack = build_sbc_stack(n=3, mode="ideal", seed=15)
    stack.parties["P0"].broadcast(b"super-secret")
    observed = stack.session.adversary.observed
    sender_leaks = [d for _f, d in observed if d and d[0] == "Sender"]
    assert sender_leaks, "FSBC must announce sender activity"
    for leak in sender_leaks:
        assert b"super-secret" not in repr(leak).encode()
