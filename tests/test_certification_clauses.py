"""Remaining Fcert decision-procedure branches (Figure 4)."""

from repro.functionalities.certification import Certification
from repro.uc.entity import Party


def test_registered_invalid_pair_stays_invalid(session):
    """Clause 3: a recorded (M, σ, 0) keeps answering 0 forever."""
    Party(session, "S")
    cert = Certification(session, signer="S")
    assert not cert.verify(b"m", b"bogus")
    session.corrupt("S")
    # even after corruption, the pinned verdict stands:
    assert not cert.verify(b"m", b"bogus")


def test_corrupted_signer_unregistered_pair_defaults_reject(session):
    """Clause 4 with a silent simulator: default verdict is reject."""
    Party(session, "S")
    cert = Certification(session, signer="S")
    session.corrupt("S")
    assert not cert.verify(b"new-message", b"new-signature")


def test_forgery_verdict_can_be_negative(session):
    """The adversary may also register an explicitly invalid pair."""
    Party(session, "S")
    cert = Certification(session, signer="S")
    session.corrupt("S")
    cert.adv_register(b"m", b"sig", valid=False)
    assert not cert.verify(b"m", b"sig")


def test_legitimate_signature_survives_forgeries(session):
    Party(session, "S")
    cert = Certification(session, signer="S")
    sigma = cert.sign("S", b"m")
    session.corrupt("S")
    cert.adv_register(b"m", b"other-sig", valid=True)
    assert cert.verify(b"m", sigma)
    assert cert.verify(b"m", b"other-sig")
