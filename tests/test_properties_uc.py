"""Property-based UC invariants under randomized adversary schedules.

Hypothesis drives random message patterns, activation orders and
corruption times against the SBC hybrid world, checking the invariants
the functionality promises no matter what the adversary does:

* agreement — all honest parties output the same batch;
* timing — outputs appear exactly at τ_rel;
* validity — a message committed by a sender that is *never corrupted*
  is in every honest batch.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build_sbc_stack
from repro.uc.adversary import Adversary


class ScheduledCorruptor(Adversary):
    """Corrupt given parties at given rounds (a random schedule)."""

    def __init__(self, schedule):
        super().__init__()
        self.schedule = dict(schedule)  # pid -> round

    def on_round_advanced(self, new_time: int) -> None:
        for pid, at_round in self.schedule.items():
            if new_time >= at_round and pid not in self.corrupted_parties:
                if pid in self.session.parties:
                    self.corrupt(pid)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=99_999),
    pattern=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),   # sender index
            st.integers(min_value=0, max_value=1),   # input round
            st.binary(min_size=1, max_size=16),      # payload
        ),
        min_size=1,
        max_size=4,
        unique_by=lambda x: x[2],
    ),
    corruption=st.dictionaries(
        st.sampled_from(["P2", "P3"]),
        st.integers(min_value=1, max_value=9),
        max_size=2,
    ),
)
def test_sbc_invariants_under_random_schedules(seed, pattern, corruption):
    adversary = ScheduledCorruptor(corruption)
    stack = build_sbc_stack(n=4, mode="hybrid", seed=seed, adversary=adversary)
    safe_senders = set()
    any_broadcast = False
    for sender_index, input_round, payload in pattern:
        pid = f"P{sender_index}"
        if input_round == 1:
            continue  # scheduled below
        if not stack.session.is_corrupted(pid):
            stack.parties[pid].broadcast(payload)
            any_broadcast = True
            if pid not in corruption:
                safe_senders.add((pid, payload))
    stack.run_rounds(1)
    for sender_index, input_round, payload in pattern:
        pid = f"P{sender_index}"
        if input_round == 1 and not stack.session.is_corrupted(pid):
            stack.parties[pid].broadcast(payload)
            any_broadcast = True
            if pid not in corruption:
                safe_senders.add((pid, payload))
    stack.run_rounds(stack.phi + stack.delta + 2)

    honest = [
        party
        for pid, party in stack.parties.items()
        if not stack.session.is_corrupted(pid)
    ]
    assert honest, "at least two parties stay honest by construction"

    if not any_broadcast:
        # Nobody (honest) ever broadcast: no period opened, no delivery.
        assert all(not party.outputs for party in honest)
        return

    batches = []
    for party in honest:
        outputs = [o for o in party.outputs if o[0] == "Broadcast"]
        # timing: exactly one batch, at τ_rel
        assert len(outputs) == 1
        batches.append(tuple(outputs[0][1]))
    # agreement:
    assert len(set(batches)) == 1
    # validity for never-corrupted senders:
    batch = set(batches[0])
    for _pid, payload in safe_senders:
        assert payload in batch


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=99_999),
    order=st.permutations(["P0", "P1", "P2", "P3"]),
)
def test_sbc_agreement_under_random_activation_orders(seed, order):
    stack = build_sbc_stack(n=4, mode="hybrid", seed=seed)
    stack.env.order = list(order)
    stack.parties[order[0]].broadcast(b"first")
    stack.parties[order[-1]].broadcast(b"last")
    stack.run_until_delivery()
    batches = {str(batch) for batch in stack.delivered().values()}
    assert len(batches) == 1


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=99_999))
def test_durs_agreement_property(seed):
    from repro.core import build_durs_stack

    stack = build_durs_stack(n=4, mode="hybrid", seed=seed)
    stack.parties["P1"].urs_request()
    stack.run_until_urs()
    stack.run_rounds(2)
    values = {party.urs for party in stack.parties.values()}
    assert len(values) == 1 and None not in values
