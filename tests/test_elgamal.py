"""ElGamal: round-trips, homomorphism, exponential variant."""

import pytest

from repro.crypto.elgamal import (
    elgamal_decrypt,
    elgamal_decrypt_exponent,
    elgamal_encrypt,
    elgamal_encrypt_exponent,
    elgamal_keygen,
    elgamal_multiply,
)
from repro.crypto.groups import TEST_GROUP


def test_roundtrip(rng):
    sk, pk = elgamal_keygen(rng)
    message = TEST_GROUP.random_element(rng)
    ct = elgamal_encrypt(TEST_GROUP, pk, message, rng)
    assert elgamal_decrypt(TEST_GROUP, sk, ct) == message


def test_wrong_key_garbles(rng):
    sk1, pk1 = elgamal_keygen(rng)
    sk2, _pk2 = elgamal_keygen(rng)
    message = TEST_GROUP.random_element(rng)
    ct = elgamal_encrypt(TEST_GROUP, pk1, message, rng)
    assert elgamal_decrypt(TEST_GROUP, sk2, ct) != message


def test_non_member_message_rejected(rng):
    _sk, pk = elgamal_keygen(rng)
    with pytest.raises(ValueError):
        elgamal_encrypt(TEST_GROUP, pk, TEST_GROUP.p - 1, rng)


def test_homomorphism(rng):
    sk, pk = elgamal_keygen(rng)
    m1 = TEST_GROUP.random_element(rng)
    m2 = TEST_GROUP.random_element(rng)
    c1 = elgamal_encrypt(TEST_GROUP, pk, m1, rng)
    c2 = elgamal_encrypt(TEST_GROUP, pk, m2, rng)
    combined = elgamal_multiply(TEST_GROUP, c1, c2)
    assert elgamal_decrypt(TEST_GROUP, sk, combined) == TEST_GROUP.mul(m1, m2)


def test_exponential_variant(rng):
    sk, pk = elgamal_keygen(rng)
    ct = elgamal_encrypt_exponent(TEST_GROUP, pk, 42, rng)
    assert elgamal_decrypt_exponent(TEST_GROUP, sk, ct, bound=100) == 42


def test_exponential_additive(rng):
    sk, pk = elgamal_keygen(rng)
    c1 = elgamal_encrypt_exponent(TEST_GROUP, pk, 10, rng)
    c2 = elgamal_encrypt_exponent(TEST_GROUP, pk, 32, rng)
    combined = elgamal_multiply(TEST_GROUP, c1, c2)
    assert elgamal_decrypt_exponent(TEST_GROUP, sk, combined, bound=100) == 42


def test_encryption_randomized(rng):
    _sk, pk = elgamal_keygen(rng)
    m = TEST_GROUP.random_element(rng)
    assert elgamal_encrypt(TEST_GROUP, pk, m, rng) != elgamal_encrypt(
        TEST_GROUP, pk, m, rng
    )
