"""Hypothesis-fuzzed fault plans against the expectation table.

The scenario matrix sweeps three hand-picked fault patterns; this suite
generates them.  Every knob the synchronous model leaves to the
adversary — activation-order permutations, staggered sender inputs,
batch reordering, maximal in-bound delays, and crash-style drops within
the corruption budget — is drawn at random and the paper's expectation
table must still hold *exactly*: each property holds (or fails) where
the paper says it does, whatever the schedule.  A second front fuzzes
the material pipeline: pools sized to exhaust at an arbitrary mid-sweep
point must degrade to counted sampling and stay ``--verify``-clean.

Two profiles: the default selection runs bounded and derandomized
(identical examples every run, CI-friendly); ``-m slow`` unlocks a
deeper randomized pass.
"""

import os
import tempfile
import warnings

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.crypto.groups import TEST_GROUP
from repro.runtime import ParallelSweep, run_voting_trial
from repro.runtime.material import MaterialStore
from repro.scenarios import evaluate_scenario
from repro.scenarios.faults import ACTIVATIONS, FaultPlan
from repro.scenarios.spec import ScenarioSpec, expected_for

#: Bounded, derandomized tier-1 profile: identical examples on every run.
QUICK = settings(
    max_examples=20,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

#: The deeper profile behind ``-m slow``: more examples, still seeded.
DEEP = settings(
    max_examples=150,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Stacks whose worlds run entirely above the scheduler: every activation
#: and input-timing knob applies; scheduler faults pass through harmless.
STACKS = ("ubc", "fbc", "sbc-hybrid", "sbc-composed", "durs")
ADVERSARIES = ("passive", "copy", "replace")

#: Input staggering must stay within each stack's broadcast period —
#: the composed SBC stack closes its period one round earlier than the
#: rest, so inputs landing later are *invalid* schedules, not faults.
MAX_STAGGER = {"sbc-composed": 1}
DEFAULT_MAX_STAGGER = 2

#: Dolev–Strong scenario shape (n=4, t=1): senders P0/P1 must stay up,
#: and at most ``t`` parties may have their traffic suppressed.
DS_DROPPABLE = ("P2", "P3")


def fault_plans(max_stagger: int, droppable=(), delayable=()):
    """Random :class:`FaultPlan`s inside the model's safe envelope."""
    return st.builds(
        FaultPlan,
        name=st.just("fuzz"),
        activation=st.sampled_from(ACTIVATIONS),
        activation_seed=st.integers(min_value=0, max_value=2**16),
        stagger=st.integers(min_value=0, max_value=max_stagger),
        net_reorder=st.booleans(),
        net_reorder_seed=st.integers(min_value=0, max_value=2**16),
        net_delay_from=st.sets(
            st.sampled_from(delayable), max_size=len(delayable)
        ).map(tuple)
        if delayable
        else st.just(()),
        net_drop_from=st.sets(st.sampled_from(droppable), max_size=1).map(tuple)
        if droppable
        else st.just(()),
    )


def scenario_cases(max_examples_profile):
    """(stack, adversary, plan) triples with stack-appropriate knobs."""
    return st.sampled_from(
        [(s, a) for s in STACKS for a in ADVERSARIES]
    ).flatmap(
        lambda pair: st.tuples(
            st.just(pair[0]),
            st.just(pair[1]),
            fault_plans(MAX_STAGGER.get(pair[0], DEFAULT_MAX_STAGGER)),
        )
    )


def _assert_expectations(stack, adversary, plan, backend="sequential", seed=0):
    spec = ScenarioSpec(
        name="fuzz",
        stack=stack,
        adversary=adversary,
        faults=plan,
        backend=backend,
        seed=seed,
        expect=expected_for(stack, adversary),
    )
    result = evaluate_scenario(spec)
    mismatched = [
        f"{p.name}: holds={p.holds} expected={p.expected} ({p.detail})"
        for p in result.mismatches
    ]
    assert result.ok, f"{spec.cell_id} under {plan}: {mismatched}"
    return result


# ---------------------------------------------------------------------------
# Stacks above the scheduler: activation + input-timing fuzz
# ---------------------------------------------------------------------------


@QUICK
@given(case=scenario_cases(QUICK), seed=st.integers(min_value=0, max_value=7))
def test_fuzzed_schedules_never_move_the_expectation_table(case, seed):
    stack, adversary, plan = case
    _assert_expectations(stack, adversary, plan, seed=seed)


@QUICK
@given(case=scenario_cases(QUICK))
def test_fuzzed_schedules_are_deterministic_and_backend_invariant(case):
    """A fault plan is part of the world definition: replaying it must
    reproduce the digest exactly, under either full-trace backend."""
    stack, adversary, plan = case
    first = _assert_expectations(stack, adversary, plan)
    again = _assert_expectations(stack, adversary, plan)
    assert first.digest == again.digest
    pooled = _assert_expectations(stack, adversary, plan, backend="pooled")
    assert pooled.digest == first.digest


# ---------------------------------------------------------------------------
# Dolev–Strong: scheduler faults (drop/delay/reorder) within the budget
# ---------------------------------------------------------------------------


@QUICK
@given(
    plan=fault_plans(
        max_stagger=DEFAULT_MAX_STAGGER,
        droppable=DS_DROPPABLE,
        delayable=("P0", "P1", "P2", "P3"),
    )
)
def test_fuzzed_scheduler_faults_within_budget_hold_ds_expectations(plan):
    """Dropping at most ``t`` non-senders, delaying anyone to the end of
    their round and reshuffling every batch: Dolev–Strong's properties
    survive any such plan by Theorem (t+1 rounds suffice)."""
    _assert_expectations("ds-ubc", "passive", plan)


# ---------------------------------------------------------------------------
# Material pipeline: pool exhaustion at a fuzzed mid-sweep point
# ---------------------------------------------------------------------------


@QUICK
@given(
    nonces=st.integers(min_value=0, max_value=20),
    feldman=st.integers(min_value=0, max_value=10),
    tasks=st.integers(min_value=1, max_value=3),
)
def test_fuzzed_pool_exhaustion_degrades_to_sampling_and_verifies(
    nonces, feldman, tasks
):
    """Whatever point mid-sweep the pools run dry, trials fall back to
    counted sampling (never crash) and the sweep stays seed-for-seed
    verifiable; the demand ledger always balances."""
    with tempfile.TemporaryDirectory() as root:
        previous = os.environ.get("REPRO_MATERIAL_DIR")
        os.environ["REPRO_MATERIAL_DIR"] = root
        try:
            store = MaterialStore(root)
            store.build([TEST_GROUP], nonces=nonces, feldman=feldman)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                verdict = ParallelSweep(
                    runner=run_voting_trial,
                    voters=3,
                    executor="inline",
                    material="disk",
                    online=True,
                    consume_forward=True,
                ).verify(range(tasks))
            assert verdict.matched
            spend = verdict.report.online_spend
            assert spend["nonces_spent"] <= nonces
            assert spend["feldman_spent"] <= feldman
            # Demand is conserved: every draw either spent or sampled.
            demand = spend["nonces_spent"] + spend["nonces_sampled"]
            assert demand > 0  # ballots always need nonces
            # The ledger's high mark never exceeds the built pool.
            ledger = store.ledger(verdict.report.online_plan.fingerprint)
            assert ledger.ok
            assert ledger.nonce_high <= nonces
            assert ledger.feldman_high <= feldman
        finally:
            if previous is None:
                os.environ.pop("REPRO_MATERIAL_DIR", None)
            else:
                os.environ["REPRO_MATERIAL_DIR"] = previous


# ---------------------------------------------------------------------------
# Deep profile (slow marker): the same properties, many more schedules
# ---------------------------------------------------------------------------


@pytest.mark.slow
@DEEP
@given(case=scenario_cases(DEEP), seed=st.integers(min_value=0, max_value=31))
def test_deep_fuzzed_schedules_hold_expectations(case, seed):
    stack, adversary, plan = case
    _assert_expectations(stack, adversary, plan, seed=seed)


@pytest.mark.slow
@DEEP
@given(
    plan=fault_plans(
        max_stagger=DEFAULT_MAX_STAGGER,
        droppable=DS_DROPPABLE,
        delayable=("P0", "P1", "P2", "P3"),
    ),
    seed=st.integers(min_value=0, max_value=31),
)
def test_deep_fuzzed_scheduler_faults_hold_ds_expectations(plan, seed):
    _assert_expectations("ds-ubc", "passive", plan, seed=seed)
