"""DURS (Figure 15 / Figure 16, Theorem 3) and randomness bias (E10)."""

import pytest

from repro.analysis.stats import bit_bias
from repro.attacks.bias import BiasingContributor
from repro.baselines.naive_beacon import build_naive_beacon
from repro.core import build_durs_stack
from repro.functionalities.dummy import DummyURSParty
from repro.functionalities.durs import URS_LEN, DelayedURS
from repro.uc.environment import Environment
from repro.uc.session import Session


@pytest.mark.parametrize("mode", ("ideal", "hybrid"))
def test_all_requesters_agree(mode):
    stack = build_durs_stack(n=4, mode=mode, seed=20)
    stack.parties["P0"].urs_request()
    stack.parties["P3"].urs_request()
    stack.run_until_urs()
    values = {v for v in stack.urs_values().values() if v is not None}
    assert len(values) == 1
    assert len(next(iter(values))) == URS_LEN


def test_hybrid_all_parties_eventually_agree():
    """Even parties that never requested contribute and converge."""
    stack = build_durs_stack(n=4, mode="hybrid", seed=21)
    stack.parties["P1"].urs_request()
    stack.run_until_urs()
    stack.run_rounds(2)
    values = {party.urs for party in stack.parties.values()}
    assert len(values) == 1 and None not in values


def test_ideal_delivery_timing():
    session = Session(seed=1)
    durs = DelayedURS(session, delta=4, alpha=1)
    parties = {f"P{i}": DummyURSParty(session, f"P{i}", durs) for i in range(2)}
    env = Environment(session)
    parties["P0"].urs_request()
    env.run_rounds(4)
    assert parties["P0"].outputs == []
    env.run_rounds(1)
    assert parties["P0"].outputs and parties["P0"].outputs[0][0] == "URS"


def test_ideal_late_request_served_immediately():
    session = Session(seed=1)
    durs = DelayedURS(session, delta=2, alpha=0)
    parties = {f"P{i}": DummyURSParty(session, f"P{i}", durs) for i in range(2)}
    env = Environment(session)
    parties["P0"].urs_request()
    env.run_rounds(5)
    value = parties["P1"].urs_request()
    assert value is not None
    assert parties["P1"].outputs[-1] == ("URS", value)


def test_ideal_adversary_advantage_alpha():
    session = Session(seed=1)
    durs = DelayedURS(session, delta=4, alpha=2)
    DummyURSParty(session, "P0", durs).urs_request()
    env = Environment(session)
    env.run_rounds(1)
    assert durs.adv_request() is None  # too early
    env.run_rounds(1)
    assert durs.adv_request() is not None  # Δ − α reached


def test_ideal_invalid_parameters():
    session = Session(seed=1)
    with pytest.raises(ValueError):
        DelayedURS(session, delta=1, alpha=2)


def test_hybrid_parameter_validation():
    with pytest.raises(ValueError):
        build_durs_stack(mode="hybrid", phi=4, delta=4)  # needs delta > phi


def test_urs_request_after_delivery_responds_immediately():
    stack = build_durs_stack(n=3, mode="hybrid", seed=22)
    stack.parties["P0"].urs_request()
    stack.run_until_urs()
    stack.run_rounds(2)
    late = stack.parties["P2"]
    value = late.urs_request()
    assert value == stack.parties["P0"].urs


# -- bias: naive beacon falls, DURS stands ------------------------------------


def _naive_run(seed: int) -> bytes:
    attack = BiasingContributor(attacker="P3", target_bit=0, expected_honest=3)
    session = Session(seed=seed, adversary=attack)
    parties = build_naive_beacon(session, [f"P{i}" for i in range(4)], close_round=2)
    env = Environment(session)
    env.run_round([(pid, lambda p: p.contribute()) for pid in parties])
    env.run_rounds(3)
    urs = parties["P0"].urs
    assert urs is not None
    return urs


def test_naive_beacon_biased_every_time():
    outputs = [_naive_run(seed) for seed in range(8)]
    assert bit_bias(outputs, bit=0) == 0.0  # MSB forced to 0 in all runs


def _durs_run(seed: int) -> bytes:
    attack = BiasingContributor(attacker="P3", target_bit=0, phi=3)
    stack = build_durs_stack(n=4, mode="hybrid", seed=seed, adversary=attack)
    stack.parties["P0"].urs_request()
    stack.run_until_urs()
    return stack.urs_values()["P0"]


def test_durs_resists_bias():
    """Blind submission leaves the target bit ~uniform across seeds."""
    outputs = [_durs_run(seed) for seed in range(16)]
    assert all(o is not None for o in outputs)
    rate = bit_bias(outputs, bit=0)
    assert 0.2 <= rate <= 0.8  # statistically fair over 16 seeds
