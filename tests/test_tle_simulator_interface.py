"""FTLE's simulator-facing Update interfaces and property-based roundtrips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build_tle_stack
from repro.functionalities.dummy import DummyTLEParty
from repro.functionalities.tle import TimeLockEncryption
from repro.uc.session import Session


def test_adv_update_supplies_ciphertexts():
    """When the simulator provides ciphertexts, Retrieve uses them."""
    session = Session(seed=1)
    tle = TimeLockEncryption(session, delay=0)
    party = DummyTLEParty(session, "P0", tle)
    tle.enc(party, b"m", 5)
    # The leak carried the tag; the simulator answers with its ciphertext.
    leak = [d for _f, d in session.adversary.observed if d[0] == "Enc"][0]
    tag = leak[2]
    tle.adv_update([(b"simulator-made-ciphertext", tag)])
    triples = tle.retrieve(party)
    assert triples == [(b"m", b"simulator-made-ciphertext", 5)]


def test_adv_update_null_ciphertext_ignored():
    session = Session(seed=2)
    tle = TimeLockEncryption(session, delay=0)
    party = DummyTLEParty(session, "P0", tle)
    tle.enc(party, b"m", 5)
    leak = [d for _f, d in session.adversary.observed if d[0] == "Enc"][0]
    tle.adv_update([(None, leak[2])])
    # falls back to a random ciphertext at Retrieve:
    (_m, c, _t) = tle.retrieve(party)[0]
    assert isinstance(c, bytes) and c != b""


def test_adv_update_unknown_tag_ignored():
    session = Session(seed=3)
    tle = TimeLockEncryption(session, delay=0)
    DummyTLEParty(session, "P0", tle)
    tle.adv_update([(b"c", b"no-such-tag")])  # no crash, no effect


def test_adv_insert_enables_dec():
    """Adversarial ciphertexts registered via Update are decryptable."""
    session = Session(seed=4)
    tle = TimeLockEncryption(session, delay=0)
    party = DummyTLEParty(session, "P0", tle)
    tle.adv_insert([(b"adv-cipher", b"adv-message", 0)])
    assert tle.dec(party, b"adv-cipher", 0) == b"adv-message"


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=9999),
    message=st.binary(min_size=1, max_size=48),
    tau=st.integers(min_value=5, max_value=12),
)
def test_hybrid_tle_roundtrip_property(seed, message, tau):
    stack = build_tle_stack(n=2, mode="hybrid", seed=seed)
    stack.enc("P0", message, tau)
    stack.run_rounds(tau)
    triples = stack.parties["P0"].retrieve()
    assert triples and triples[0][0] == message
    (_m, c, _t) = triples[0]
    assert stack.parties["P1"].dec(c, tau) == message
