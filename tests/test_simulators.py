"""Executable simulators: view equality (Lemma 1) and equivocation (Thm 2)."""

import pytest

from repro.attacks.adaptive import UBCReplaceAttack
from repro.attacks.rushing import UBCCopyAttack
from repro.functionalities.dummy import DummyBroadcastParty
from repro.functionalities.random_oracle import RandomOracle
from repro.functionalities.ubc import UnfairBroadcast
from repro.protocols.common import pad_message, unpad_message
from repro.protocols.ubc_protocol import UBCProtocolAdapter
from repro.simulators.sbc import EquivocationAbort, SBCEquivocator
from repro.simulators.ubc import UBCSimulator
from repro.uc.adversary import Adversary, PassiveAdversary
from repro.uc.environment import Environment
from repro.uc.session import Session

from tests.conftest import broadcast_action


def _view(adversary: Adversary):
    """The adversary's view: (source fid, detail) leak sequence."""
    inner = adversary.inner if isinstance(adversary, UBCSimulator) else adversary
    return [(fid, detail) for fid, detail in inner.observed]


def _run_world(ideal: bool, inner_factory, script, seed=7, n=3):
    inner = inner_factory()
    if ideal:
        adversary = UBCSimulator(inner)
        session = Session(seed=seed, adversary=adversary)
        service = UnfairBroadcast(session)
    else:
        adversary = inner
        session = Session(seed=seed, adversary=adversary)
        service = UBCProtocolAdapter(session)
    parties = {
        f"P{i}": DummyBroadcastParty(session, f"P{i}", service) for i in range(n)
    }
    env = Environment(session)
    for actions in script:
        env.run_round(actions)
    outputs = {pid: tuple(p.outputs) for pid, p in parties.items()}
    return adversary, outputs


SCRIPT = [
    [("P0", broadcast_action(b"one")), ("P1", broadcast_action(b"two"))],
    [("P2", broadcast_action(b"three"))],
]


def test_simulated_view_equals_real_view_passive():
    """Lemma 1's simulation, executably: identical passive views."""
    real_adv, real_out = _run_world(False, PassiveAdversary, SCRIPT)
    sim_adv, ideal_out = _run_world(True, PassiveAdversary, SCRIPT)
    assert _view(real_adv) == _view(sim_adv)
    assert real_out == ideal_out


def test_simulated_view_equals_real_view_replacing():
    """An actively-attacking adversary sees identical worlds too."""
    factory = lambda: UBCReplaceAttack(victim="P0", replacement=b"evil")
    real_adv, real_out = _run_world(False, factory, SCRIPT)
    sim_adv, ideal_out = _run_world(True, factory, SCRIPT)
    assert real_out == ideal_out
    # The attack itself succeeded identically:
    real_inner = real_adv
    sim_inner = sim_adv.inner
    assert real_inner.replaced == sim_inner.replaced == [b"one"]


def test_simulated_view_copy_attack():
    factory = lambda: UBCCopyAttack(attacker="P2")
    real_adv, real_out = _run_world(False, factory, SCRIPT[:1])
    sim_adv, ideal_out = _run_world(True, factory, SCRIPT[:1])
    assert real_out == ideal_out
    assert real_adv.copied == sim_adv.inner.copied


# -- SBC equivocation ---------------------------------------------------------


@pytest.fixture
def equivocator(session):
    oracle = RandomOracle(session, fid="FRO:sim", digest_size=192)
    return SBCEquivocator(session, oracle)


def test_commit_then_equivocate_opens_to_message(session, equivocator):
    tag = session.fresh_tag()
    rho, mask = equivocator.commit(tag)
    message = pad_message(b"the real message", 192)
    equivocator.equivocate(tag, message)
    assert unpad_message(equivocator.open(tag)) == b"the real message"


def test_commitment_reveals_nothing(session, equivocator):
    """Before equivocation the transcript is independent of any message."""
    tag = session.fresh_tag()
    rho, mask = equivocator.commit(tag)
    # rho and mask are fresh session randomness: no function of a message
    # was involved (there is no message yet). Sanity: distinct per tag.
    tag2 = session.fresh_tag()
    rho2, mask2 = equivocator.commit(tag2)
    assert rho != rho2 and mask != mask2
    assert equivocator.pending() == [tag, tag2]


def test_equivocation_abort_when_adversary_prequeried(session, equivocator):
    """The proof's bad event: A queried ρ before the release."""
    tag = session.fresh_tag()
    rho, _mask = equivocator.commit(tag)
    equivocator.oracle.query(rho, querier="A")  # adversary got there first
    with pytest.raises(EquivocationAbort):
        equivocator.equivocate(tag, pad_message(b"m", 192))


def test_equivocate_idempotent(session, equivocator):
    tag = session.fresh_tag()
    equivocator.commit(tag)
    message = pad_message(b"m", 192)
    equivocator.equivocate(tag, message)
    equivocator.equivocate(tag, message)  # second call: no-op
    assert unpad_message(equivocator.open(tag)) == b"m"


def test_equivocate_unknown_tag_rejected(session, equivocator):
    with pytest.raises(KeyError):
        equivocator.equivocate(b"nope", pad_message(b"m", 192))


def test_equivocate_wrong_length_rejected(session, equivocator):
    tag = session.fresh_tag()
    equivocator.commit(tag)
    with pytest.raises(ValueError):
        equivocator.equivocate(tag, b"short")


def test_many_commitments_interleaved(session, equivocator):
    tags = [session.fresh_tag() for _ in range(5)]
    for tag in tags:
        equivocator.commit(tag)
    messages = [pad_message(f"msg-{i}".encode(), 192) for i in range(5)]
    for tag, message in zip(reversed(tags), reversed(messages)):
        equivocator.equivocate(tag, message)
    for i, tag in enumerate(tags):
        assert unpad_message(equivocator.open(tag)) == f"msg-{i}".encode()
    assert equivocator.pending() == []
