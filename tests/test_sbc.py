"""Simultaneous broadcast (Figure 13 / Figure 14, Theorem 2, Corollary 1).

Covers: agreement and output equality across ideal/hybrid/composed
worlds; the broadcast period (late/early messages discarded); delivery at
exactly t_end + Δ; liveness without full participation; corrupted-sender
participation.
"""

import pytest

from repro.core import build_sbc_stack
from repro.uc.adversary import StaticCorruptor

ALL_MODES = ("ideal", "hybrid", "composed")


@pytest.mark.parametrize("mode", ALL_MODES)
def test_agreement_and_validity(mode):
    stack = build_sbc_stack(n=4, mode=mode, seed=11)
    stack.parties["P0"].broadcast(b"alpha")
    stack.parties["P1"].broadcast(b"beta")
    stack.run_until_delivery()
    batches = stack.delivered()
    assert all(batch == [b"alpha", b"beta"] for batch in batches.values())


def test_outputs_identical_across_all_modes():
    """Theorem 2 / Corollary 1, executably: same script, same outputs."""
    results = {}
    for mode in ALL_MODES:
        stack = build_sbc_stack(n=4, mode=mode, seed=21)
        stack.parties["P2"].broadcast(b"zzz")
        stack.parties["P0"].broadcast(b"aaa")
        stack.run_until_delivery()
        results[mode] = stack.delivered()
    assert results["ideal"] == results["hybrid"] == results["composed"]


@pytest.mark.parametrize("mode", ALL_MODES)
def test_delivery_round_is_phi_plus_delta(mode):
    stack = build_sbc_stack(n=3, mode=mode, seed=3)
    stack.parties["P0"].broadcast(b"m")  # period opens at round 0
    target = stack.phi + stack.delta
    stack.run_rounds(target)  # rounds 0 .. target-1 done; now at `target`
    assert all(not p.outputs for p in stack.parties.values())
    stack.run_rounds(1)  # ticks of round `target` deliver
    for party in stack.parties.values():
        assert party.outputs, "delivery must happen exactly at t_end + delta"


@pytest.mark.parametrize("mode", ALL_MODES)
def test_liveness_without_full_participation(mode):
    """Unlike [Hev06], termination does not need everyone to broadcast."""
    stack = build_sbc_stack(n=5, mode=mode, seed=4)
    stack.parties["P0"].broadcast(b"only-one")
    stack.run_until_delivery()
    batches = stack.delivered()
    assert all(batch == [b"only-one"] for batch in batches.values())


@pytest.mark.parametrize("mode", ALL_MODES)
def test_late_messages_discarded(mode):
    stack = build_sbc_stack(n=3, mode=mode, seed=5)
    stack.parties["P0"].broadcast(b"on-time")
    # Run past the end of the period, then try to broadcast.
    stack.run_rounds(stack.phi + 1)
    stack.parties["P1"].broadcast(b"too-late")
    stack.run_until_delivery()
    for batch in stack.delivered().values():
        assert b"too-late" not in batch
        assert b"on-time" in batch


def test_hybrid_late_window_respects_tle_delay():
    """ΠSBC refuses inputs at Cl ≥ t_end − delay (footnote of Fig. 14)."""
    stack = build_sbc_stack(n=3, mode="hybrid", seed=6, phi=4)
    stack.parties["P0"].broadcast(b"first")  # opens period, round 0
    delay = stack.tle.delay
    # advance to exactly t_end − delay
    stack.run_rounds(stack.phi - delay)
    stack.parties["P1"].broadcast(b"at-boundary")
    stack.run_until_delivery()
    for batch in stack.delivered().values():
        assert batch == [b"first"]


@pytest.mark.parametrize("mode", ("hybrid", "composed"))
def test_messages_within_window_accepted(mode):
    stack = build_sbc_stack(n=3, mode=mode, seed=7, phi=5)
    stack.parties["P0"].broadcast(b"r0")
    stack.run_rounds(1)
    stack.parties["P1"].broadcast(b"r1")
    stack.run_until_delivery()
    for batch in stack.delivered().values():
        assert batch == [b"r0", b"r1"]


@pytest.mark.parametrize("mode", ALL_MODES)
def test_batch_sorted(mode):
    stack = build_sbc_stack(n=3, mode=mode, seed=8)
    stack.parties["P1"].broadcast(b"zz")
    stack.parties["P0"].broadcast(b"aa")
    stack.parties["P2"].broadcast(b"mm")
    stack.run_until_delivery()
    for batch in stack.delivered().values():
        assert batch == sorted(batch)


@pytest.mark.parametrize("mode", ALL_MODES)
def test_statically_corrupted_receivers_do_not_block(mode):
    """The clock never waits for corrupted parties: liveness under t<n."""
    adversary = StaticCorruptor(["P2", "P3"])
    stack = build_sbc_stack(n=4, mode=mode, seed=9, adversary=adversary)
    stack.parties["P0"].broadcast(b"m")
    stack.run_until_delivery()
    for pid in ("P0", "P1"):
        batches = [o[1] for o in stack.parties[pid].outputs if o[0] == "Broadcast"]
        assert batches and batches[-1] == [b"m"]


def test_multiple_inputs_before_wakeup_all_queued():
    """Deviation from Figure 14's literal `firstP`: every pre-wake input
    is queued, matching FSBC (which records all in-period requests)."""
    stack = build_sbc_stack(n=3, mode="hybrid", seed=10)
    party = stack.parties["P0"]
    party.broadcast(b"first")
    party.broadcast(b"second")
    stack.run_until_delivery()
    for batch in stack.delivered().values():
        assert batch == [b"first", b"second"]


def test_message_too_long_rejected():
    stack = build_sbc_stack(n=3, mode="hybrid", seed=11)
    from repro.protocols.common import MessageTooLong

    with pytest.raises(MessageTooLong):
        stack.parties["P0"].broadcast(b"x" * 10_000)


def test_structured_payloads_roundtrip():
    stack = build_sbc_stack(n=3, mode="composed", seed=12)
    payload = ("bid", 42, b"blob", ("nested", None))
    stack.parties["P0"].broadcast(payload)
    stack.run_until_delivery()
    for batch in stack.delivered().values():
        assert batch == [payload]
