"""Fcert: ideal unforgeability while honest, forgery after corruption."""

import pytest

from repro.functionalities.certification import Certification, RealCertification
from repro.uc.entity import Party
from repro.uc.errors import CorruptionError


def test_sign_verify(session):
    Party(session, "S")
    cert = Certification(session, signer="S")
    sigma = cert.sign("S", b"msg")
    assert cert.verify(b"msg", sigma)


def test_only_signer_may_sign(session):
    Party(session, "S")
    cert = Certification(session, signer="S")
    with pytest.raises(CorruptionError):
        cert.sign("other", b"msg")


def test_unforgeable_while_honest(session):
    Party(session, "S")
    cert = Certification(session, signer="S")
    assert not cert.verify(b"msg", b"guessed-signature")
    # And the failed pair is pinned: even a later legitimate signature of
    # the same message uses a different token.
    sigma = cert.sign("S", b"msg")
    assert cert.verify(b"msg", sigma)
    assert not cert.verify(b"msg", b"guessed-signature")


def test_adv_register_requires_corruption(session):
    Party(session, "S")
    cert = Certification(session, signer="S")
    with pytest.raises(CorruptionError):
        cert.adv_register(b"forged", b"sig")


def test_forgery_after_corruption(session):
    Party(session, "S")
    cert = Certification(session, signer="S")
    session.corrupt("S")
    cert.adv_register(b"forged", b"sig")
    assert cert.verify(b"forged", b"sig")


def test_signature_deterministic_per_message(session):
    Party(session, "S")
    cert = Certification(session, signer="S")
    assert cert.sign("S", b"m") == cert.sign("S", b"m")
    assert cert.sign("S", b"m") != cert.sign("S", b"m2")


def test_real_certification_roundtrip(session):
    cert = RealCertification(session)
    sig = cert.sign("P0", b"hello")
    assert cert.verify("P0", b"hello", sig)
    assert not cert.verify("P0", b"other", sig)
    assert not cert.verify("P1", b"hello", sig)  # unknown signer


def test_real_certification_cross_party(session):
    cert = RealCertification(session)
    cert.ensure_key("P1")
    sig = cert.sign("P0", b"hello")
    assert not cert.verify("P1", b"hello", sig)


def test_metrics_counted(session):
    Party(session, "S")
    cert = Certification(session, signer="S")
    sigma = cert.sign("S", b"m")
    cert.verify(b"m", sigma)
    assert session.metrics.get("sig.sign") == 1
    assert session.metrics.get("sig.verify") == 1
