"""Production-strength parameters: one pass over the 2048-bit group."""

from repro.crypto.groups import GROUP_2048
from repro.crypto.schnorr import schnorr_keygen, schnorr_sign, schnorr_verify
from repro.crypto.zkp import pok_prove, pok_verify


def test_schnorr_signature_2048(rng):
    kp = schnorr_keygen(rng, group=GROUP_2048)
    sig = schnorr_sign(kp, b"production message", rng)
    assert schnorr_verify(GROUP_2048, kp.public, b"production message", sig)
    assert not schnorr_verify(GROUP_2048, kp.public, b"other", sig)


def test_pok_2048(rng):
    x = GROUP_2048.random_scalar(rng)
    y = GROUP_2048.power_of_g(x)
    proof = pok_prove(GROUP_2048, GROUP_2048.g, y, x, rng)
    assert pok_verify(GROUP_2048, GROUP_2048.g, y, proof)


def test_group_law_2048(rng):
    a = GROUP_2048.random_element(rng)
    assert GROUP_2048.mul(a, GROUP_2048.inv(a)) == 1
    assert GROUP_2048.is_member(a)
