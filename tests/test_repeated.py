"""Repeated SBC periods over a shared substrate."""

from repro.core.repeated import RepeatedSBC


def test_three_periods_deliver_independently():
    runner = RepeatedSBC(n=3, seed=10)
    for k in range(3):
        delivered = runner.run_period(
            {"P0": f"p{k}-a".encode(), "P1": f"p{k}-b".encode()}
        )
        expected = sorted([f"p{k}-a".encode(), f"p{k}-b".encode()])
        assert all(batch == expected for batch in delivered.values())


def test_no_cross_period_leakage():
    """A period's batch never contains an earlier period's messages."""
    runner = RepeatedSBC(n=2, seed=11)
    first = runner.run_period({"P0": b"first-period"})
    second = runner.run_period({"P1": b"second-period"})
    assert first["P1"] == [b"first-period"]
    assert second["P0"] == [b"second-period"]
    assert b"first-period" not in second["P0"]


def test_empty_period_delivers_nothing():
    runner = RepeatedSBC(n=2, seed=12)
    runner.run_period({"P0": b"x"})
    empty = runner.run_period({})
    assert all(batch is None for batch in empty.values())


def test_substrate_shared_across_periods():
    runner = RepeatedSBC(n=2, seed=13)
    runner.run_period({"P0": b"a"})
    functionality_count = len(runner.session.functionalities)
    runner.run_period({"P0": b"b"})
    # only the one-per-period adapter is added; substrate objects reused
    assert len(runner.session.functionalities) == functionality_count + 1


def test_broadcast_requires_joined_period():
    import pytest

    from repro.core.repeated import RepeatedSBCParty
    from repro.uc.session import Session

    session = Session(seed=1)
    party = RepeatedSBCParty(session, "P0")
    with pytest.raises(RuntimeError):
        party.broadcast(b"m")
