"""Direct unit coverage of the attack strategies' selection logic."""

from repro.attacks.adaptive import (
    LockedReplaceAttack,
    OutputRequestProbe,
    UBCReplaceAttack,
)
from repro.attacks.bias import BiasingContributor
from repro.attacks.rushing import UBCCopyAttack
from repro.functionalities.dummy import DummyBroadcastParty
from repro.functionalities.fbc import FairBroadcast
from repro.functionalities.ubc import UnfairBroadcast
from repro.uc.environment import Environment
from repro.uc.session import Session

from tests.conftest import broadcast_action


def _ubc_world(adversary, n=4, seed=1):
    session = Session(seed=seed, adversary=adversary)
    ubc = UnfairBroadcast(session)
    parties = {
        f"P{i}": DummyBroadcastParty(session, f"P{i}", ubc) for i in range(n)
    }
    return session, ubc, parties, Environment(session)


def test_copy_attack_victim_filter():
    attack = UBCCopyAttack(attacker="P3", victim="P1")
    _s, _u, parties, env = _ubc_world(attack)
    env.run_round(
        [("P0", broadcast_action(b"not-the-victim")), ("P1", broadcast_action(b"target"))]
    )
    assert attack.copied == [b"target"]


def test_copy_attack_ignores_own_messages():
    attack = UBCCopyAttack(attacker="P3")
    session, ubc, parties, env = _ubc_world(attack)
    session.corrupt("P3")
    ubc.adv_broadcast("P3", b"self-talk")
    assert attack.copied == []  # never copies itself


def test_copy_attack_copies_each_message_once():
    attack = UBCCopyAttack(attacker="P3")
    _s, _u, parties, env = _ubc_world(attack)
    env.run_round([("P0", broadcast_action(b"dup"))])
    env.run_round([("P1", broadcast_action(b"dup"))])
    assert attack.copied == [b"dup"]


def test_replace_attack_skips_matching_replacement():
    attack = UBCReplaceAttack(victim="P0", replacement=b"same")
    _s, _u, parties, env = _ubc_world(attack)
    env.run_round([("P0", broadcast_action(b"same"))])
    assert attack.replaced == []  # nothing to gain, nothing corrupted
    assert "P0" not in attack.corrupted_parties


def test_output_probe_collects_all_tags():
    probe = OutputRequestProbe()
    session = Session(seed=2, adversary=probe)
    fbc = FairBroadcast(session, delta=3, alpha=2)
    _parties = {
        f"P{i}": DummyBroadcastParty(session, f"P{i}", fbc) for i in range(2)
    }
    env = Environment(session)
    env.run_round(
        [("P0", broadcast_action(b"a")), ("P1", broadcast_action(b"b"))]
    )
    env.run_rounds(4)
    assert probe.reveal_ages == [1, 1]  # Δ − α for both messages


def test_locked_replace_reads_then_always_fails():
    """Reading at Δ − α locks the value; the follow-up Allow must lose."""
    attack = LockedReplaceAttack(victim="P0", replacement=b"evil")
    session = Session(seed=5, adversary=attack)
    fbc = FairBroadcast(session, delta=3, alpha=1)
    parties = {
        f"P{i}": DummyBroadcastParty(session, f"P{i}", fbc) for i in range(3)
    }
    env = Environment(session)
    env.run_round([("P0", broadcast_action(b"good"))])
    env.run_rounds(4)
    assert attack.revealed == [b"good"]  # obtained exactly at Δ − α
    assert attack.attempts == 1 and attack.successes == 0
    assert "P0" in attack.corrupted_parties  # corruption did not help
    assert [m for _, m in parties["P1"].outputs] == [b"good"]


def test_locked_replace_ignores_other_senders():
    attack = LockedReplaceAttack(victim="P0", replacement=b"evil")
    session = Session(seed=6, adversary=attack)
    fbc = FairBroadcast(session, delta=2, alpha=1)
    _parties = {
        f"P{i}": DummyBroadcastParty(session, f"P{i}", fbc) for i in range(3)
    }
    env = Environment(session)
    env.run_round([("P1", broadcast_action(b"not-the-victim"))])
    env.run_rounds(3)
    assert attack.revealed == [b"not-the-victim"]  # still reads everything
    assert attack.attempts == 0  # but only the victim gets replaced
    assert "P1" not in attack.corrupted_parties


def test_biasing_contributor_informed_math():
    """The informed submission makes XOR(all)'s MSB equal the target."""
    from repro.crypto.hashing import xor_bytes
    from repro.functionalities.durs import URS_LEN

    attack = BiasingContributor(attacker="P3", target_bit=1, expected_honest=2)
    session = Session(seed=3, adversary=attack)
    ubc = UnfairBroadcast(session)
    parties = {
        f"P{i}": DummyBroadcastParty(session, f"P{i}", ubc) for i in range(4)
    }
    contributions = []
    for pid in ("P0", "P1"):
        value = session.random_bytes(URS_LEN)
        contributions.append(value)
        ubc.broadcast(parties[pid], value)
    assert attack.submitted is not None and attack.informed
    total = attack.submitted
    for value in contributions:
        total = xor_bytes(total, value)
    assert total[0] >> 7 == 1  # the targeted bit


def test_biasing_contributor_blind_without_channel():
    attack = BiasingContributor(attacker="P0", target_bit=0, phi=2)
    session = Session(seed=4, adversary=attack)
    ubc = UnfairBroadcast(session)
    DummyBroadcastParty(session, "P0", ubc)
    DummyBroadcastParty(session, "P1", ubc)
    Environment(session).run_rounds(5)
    # Never saw a Sender leak: no period start, no submission, no crash.
    assert attack.submitted is None
