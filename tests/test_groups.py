"""Schnorr group: parameter validity and group-law sanity."""

import pytest

from repro.crypto.groups import GROUP_2048, TEST_GROUP, SchnorrGroup


def _is_probable_prime(n: int, rounds: int = 30) -> bool:
    import random

    if n < 2:
        return False
    for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % p == 0:
            return n == p
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    prng = random.Random(0xBEEF)
    for _ in range(rounds):
        a = prng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def test_test_group_is_safe_prime():
    assert _is_probable_prime(TEST_GROUP.p)
    assert _is_probable_prime(TEST_GROUP.q)
    assert TEST_GROUP.p == 2 * TEST_GROUP.q + 1


def test_test_group_size():
    assert TEST_GROUP.p.bit_length() == 256


def test_generator_has_order_q():
    assert pow(TEST_GROUP.g, TEST_GROUP.q, TEST_GROUP.p) == 1
    assert TEST_GROUP.g != 1


def test_group_2048_structure():
    assert GROUP_2048.p.bit_length() == 2048
    assert pow(GROUP_2048.g, GROUP_2048.q, GROUP_2048.p) == 1


def test_exponent_reduction(rng):
    x = TEST_GROUP.random_scalar(rng)
    assert TEST_GROUP.power_of_g(x) == TEST_GROUP.power_of_g(x + TEST_GROUP.q)


def test_mul_inv(rng):
    a = TEST_GROUP.random_element(rng)
    assert TEST_GROUP.mul(a, TEST_GROUP.inv(a)) == 1


def test_membership(rng):
    assert TEST_GROUP.is_member(TEST_GROUP.g)
    assert TEST_GROUP.is_member(TEST_GROUP.random_element(rng))
    assert not TEST_GROUP.is_member(0)
    assert not TEST_GROUP.is_member(TEST_GROUP.p)
    # p-1 is a non-residue (order 2) for a safe-prime group.
    assert not TEST_GROUP.is_member(TEST_GROUP.p - 1)


def test_element_to_bytes_fixed_width(rng):
    width = (TEST_GROUP.p.bit_length() + 7) // 8
    assert len(TEST_GROUP.element_to_bytes(1)) == width
    assert len(TEST_GROUP.element_to_bytes(TEST_GROUP.random_element(rng))) == width


def test_discrete_log_small():
    for exponent in (0, 1, 5, 1000):
        target = TEST_GROUP.power_of_g(exponent)
        assert TEST_GROUP.discrete_log_small(target, bound=2000) == exponent


def test_discrete_log_out_of_bound():
    target = TEST_GROUP.power_of_g(5000)
    with pytest.raises(ValueError):
        TEST_GROUP.discrete_log_small(target, bound=100)


def test_bad_generator_rejected():
    with pytest.raises(ValueError):
        SchnorrGroup(p=23, q=11, g=1)


# ---------------------------------------------------------------------------
# Cache thread-safety and pickling (shared instances under SessionPool)
# ---------------------------------------------------------------------------


def _cold_group() -> SchnorrGroup:
    return SchnorrGroup(p=TEST_GROUP.p, q=TEST_GROUP.q, g=TEST_GROUP.g)


def test_lazy_caches_thread_safe_under_stress():
    # One cold group hammered by 8 threads released simultaneously: the
    # fixed-base table build and the encoding-cache population race on
    # first use, and every accelerated result must still be exact.
    import random
    import threading

    group = _cold_group()
    barrier = threading.Barrier(8)
    failures = []

    def worker(seed: int) -> None:
        rng = random.Random(seed)
        barrier.wait()  # maximise contention on the cold caches
        for _ in range(40):
            e = rng.randrange(group.q)
            value = group.power_of_g(e)
            if value != pow(group.g, e, group.p):
                failures.append(("pow", seed, e))
            encoded = group.element_to_bytes(value)
            if int.from_bytes(encoded, "big") != value:
                failures.append(("encode", seed, e))

    threads = [threading.Thread(target=worker, args=(seed,)) for seed in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not failures
    assert group._fb_table is not None  # the table was built exactly once


def test_warm_up_idempotent_and_concurrent():
    import threading

    group = _cold_group()
    threads = [threading.Thread(target=group.warm_up) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    table = group._fb_table
    assert table is not None
    group.warm_up()
    assert group._fb_table is table  # second pass reuses, never rebuilds


def test_group_pickles_without_acceleration_state():
    # Process workers receive groups by value; locks don't pickle, so the
    # reduced state is the (p, q, g) identity and caches rebuild cold.
    import pickle

    group = _cold_group()
    group.warm_up()
    clone = pickle.loads(pickle.dumps(group))
    assert clone == group
    assert clone._fb_table is None  # caches did not travel
    assert clone.power_of_g(12345) == group.power_of_g(12345)
    clone.warm_up()
    assert clone._fb_table is not None


def test_precompute_repeated_default_calls_are_cheap_noops():
    group = _cold_group()
    group.precompute_fixed_base()
    table = group._fb_table
    # Default and same-window calls must reuse the existing table.
    group.precompute_fixed_base()
    assert group._fb_table is table
    group.precompute_fixed_base(group._fb_window)
    assert group._fb_table is table


def test_precompute_explicit_window_rebuilds_consistently():
    group = _cold_group()
    group.precompute_fixed_base()
    default_window = group._fb_window
    reference = group.power_of_g(123456789)
    group.precompute_fixed_base(default_window + 2)
    assert group._fb_window == default_window + 2
    assert group.power_of_g(123456789) == reference  # values never change


def test_fb_table_bytes_tracks_the_serialized_footprint():
    group = _cold_group()
    assert group.fb_table_bytes == 0
    group.precompute_fixed_base()
    rows = len(group._fb_table)
    cols = len(group._fb_table[0])
    width = (group.p.bit_length() + 7) // 8
    assert group.fb_table_bytes == rows * cols * width


def test_install_fixed_base_accepts_only_matching_tables():
    import pytest

    donor = _cold_group()
    donor.precompute_fixed_base()
    table, window = donor._fb_table, donor._fb_window
    target = _cold_group()
    target.install_fixed_base(table, window)
    assert target.power_of_g(54321) == pow(target.g, 54321, target.p)

    with pytest.raises(ValueError, match="shape"):
        _cold_group().install_fixed_base(table[:-1], window)
    with pytest.raises(ValueError, match="window"):
        _cold_group().install_fixed_base(table, 0)
    doctored = [list(row) for row in table]
    doctored[0][1] = 12345  # not g
    with pytest.raises(ValueError, match="row 0"):
        _cold_group().install_fixed_base(doctored, window)
    mangled = [list(row) for row in table]
    mangled[-1][1] = mangled[-1][2]  # break the base ladder in the top row
    with pytest.raises(ValueError, match="chain"):
        _cold_group().install_fixed_base(mangled, window)
