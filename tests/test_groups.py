"""Schnorr group: parameter validity and group-law sanity."""

import pytest

from repro.crypto.groups import GROUP_2048, TEST_GROUP, SchnorrGroup


def _is_probable_prime(n: int, rounds: int = 30) -> bool:
    import random

    if n < 2:
        return False
    for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % p == 0:
            return n == p
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    prng = random.Random(0xBEEF)
    for _ in range(rounds):
        a = prng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def test_test_group_is_safe_prime():
    assert _is_probable_prime(TEST_GROUP.p)
    assert _is_probable_prime(TEST_GROUP.q)
    assert TEST_GROUP.p == 2 * TEST_GROUP.q + 1


def test_test_group_size():
    assert TEST_GROUP.p.bit_length() == 256


def test_generator_has_order_q():
    assert pow(TEST_GROUP.g, TEST_GROUP.q, TEST_GROUP.p) == 1
    assert TEST_GROUP.g != 1


def test_group_2048_structure():
    assert GROUP_2048.p.bit_length() == 2048
    assert pow(GROUP_2048.g, GROUP_2048.q, GROUP_2048.p) == 1


def test_exponent_reduction(rng):
    x = TEST_GROUP.random_scalar(rng)
    assert TEST_GROUP.power_of_g(x) == TEST_GROUP.power_of_g(x + TEST_GROUP.q)


def test_mul_inv(rng):
    a = TEST_GROUP.random_element(rng)
    assert TEST_GROUP.mul(a, TEST_GROUP.inv(a)) == 1


def test_membership(rng):
    assert TEST_GROUP.is_member(TEST_GROUP.g)
    assert TEST_GROUP.is_member(TEST_GROUP.random_element(rng))
    assert not TEST_GROUP.is_member(0)
    assert not TEST_GROUP.is_member(TEST_GROUP.p)
    # p-1 is a non-residue (order 2) for a safe-prime group.
    assert not TEST_GROUP.is_member(TEST_GROUP.p - 1)


def test_element_to_bytes_fixed_width(rng):
    width = (TEST_GROUP.p.bit_length() + 7) // 8
    assert len(TEST_GROUP.element_to_bytes(1)) == width
    assert len(TEST_GROUP.element_to_bytes(TEST_GROUP.random_element(rng))) == width


def test_discrete_log_small():
    for exponent in (0, 1, 5, 1000):
        target = TEST_GROUP.power_of_g(exponent)
        assert TEST_GROUP.discrete_log_small(target, bound=2000) == exponent


def test_discrete_log_out_of_bound():
    target = TEST_GROUP.power_of_g(5000)
    with pytest.raises(ValueError):
        TEST_GROUP.discrete_log_small(target, bound=100)


def test_bad_generator_rejected():
    with pytest.raises(ValueError):
        SchnorrGroup(p=23, q=11, g=1)
