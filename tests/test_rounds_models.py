"""Lineage complexity models (E9): shapes, tolerances, table building."""

from repro.baselines.rounds_models import COMPLEXITY_MODELS, complexity_table


def test_all_models_present():
    assert set(COMPLEXITY_MODELS) == {
        "CGMA85", "CR87", "Gen00", "FKL08", "Hev06", "this-paper",
    }


def test_round_complexity_shapes():
    """Linear vs logarithmic vs constant, as the paper's intro recounts."""
    cgma = COMPLEXITY_MODELS["CGMA85"]
    cr = COMPLEXITY_MODELS["CR87"]
    gen = COMPLEXITY_MODELS["Gen00"]
    ours = COMPLEXITY_MODELS["this-paper"]
    small, large = 8, 1024
    t_small, t_large = small // 2, large // 2
    # CGMA85 grows linearly with t:
    assert cgma.rounds(large, t_large) / cgma.rounds(small, t_small) > 50
    # CR87 grows logarithmically:
    ratio = cr.rounds(large, t_large) / cr.rounds(small, t_small)
    assert 1 < ratio < 5
    # Gen00 and ours are constant:
    assert gen.rounds(small, t_small) == gen.rounds(large, t_large)
    assert ours.rounds(small, t_small) == ours.rounds(large, t_large)


def test_only_this_paper_tolerates_dishonest_majority():
    for name, model in COMPLEXITY_MODELS.items():
        n = 10
        if name == "this-paper":
            assert model.tolerates(n, n - 1)
        else:
            assert model.tolerates(n, (n - 1) // 2)
            assert not model.tolerates(n, n // 2 + 1)


def test_only_uc_models_flagged_composable():
    composable = {n for n, m in COMPLEXITY_MODELS.items() if m.composable}
    assert composable == {"Hev06", "this-paper"}
    adaptive = {n for n, m in COMPLEXITY_MODELS.items() if m.adaptive}
    assert adaptive == {"this-paper"}


def test_table_rows():
    rows = complexity_table([4, 16])
    assert len(rows) == 2 * len(COMPLEXITY_MODELS)
    sample = [r for r in rows if r["model"] == "this-paper" and r["n"] == 16][0]
    assert sample["max_t"] == 15
    assert sample["rounds"] == 7
