"""Schnorr signatures: correctness and rejection paths."""

from repro.crypto.groups import TEST_GROUP
from repro.crypto.schnorr import (
    SchnorrSignature,
    schnorr_keygen,
    schnorr_sign,
    schnorr_verify,
)


def test_sign_verify(rng):
    kp = schnorr_keygen(rng)
    sig = schnorr_sign(kp, b"message", rng)
    assert schnorr_verify(kp.group, kp.public, b"message", sig)


def test_wrong_message_rejected(rng):
    kp = schnorr_keygen(rng)
    sig = schnorr_sign(kp, b"message", rng)
    assert not schnorr_verify(kp.group, kp.public, b"other", sig)


def test_wrong_key_rejected(rng):
    kp1, kp2 = schnorr_keygen(rng), schnorr_keygen(rng)
    sig = schnorr_sign(kp1, b"message", rng)
    assert not schnorr_verify(kp1.group, kp2.public, b"message", sig)


def test_tampered_signature_rejected(rng):
    kp = schnorr_keygen(rng)
    sig = schnorr_sign(kp, b"message", rng)
    bad = SchnorrSignature(r=sig.r, s=(sig.s + 1) % kp.group.q)
    assert not schnorr_verify(kp.group, kp.public, b"message", bad)


def test_non_member_commitment_rejected(rng):
    kp = schnorr_keygen(rng)
    sig = schnorr_sign(kp, b"message", rng)
    bad = SchnorrSignature(r=TEST_GROUP.p - 1, s=sig.s)
    assert not schnorr_verify(kp.group, kp.public, b"message", bad)


def test_signatures_randomized(rng):
    kp = schnorr_keygen(rng)
    assert schnorr_sign(kp, b"m", rng) != schnorr_sign(kp, b"m", rng)


def test_empty_message(rng):
    kp = schnorr_keygen(rng)
    sig = schnorr_sign(kp, b"", rng)
    assert schnorr_verify(kp.group, kp.public, b"", sig)
