"""The computational content of α = 2: how early a real adversary can open
an ΠFBC ciphertext with the corrupted coalition's own query budget.

Honest parties deliver at request + 2.  A rushing adversary that devotes
the full coalition budget to one intercepted puzzle (q links in the
interception round, q links the next) recovers ρ at the *end* of round
request+1 — exactly one round before honest delivery and never earlier,
because the wrapper bounds sequential depth.  The ideal functionality's
α = 2 (read at the request round) is therefore a safe upper bound on the
real advantage, as a simulator advantage must be.
"""

from repro.core.stacks import build_fbc_fixture
from repro.crypto.hashing import xor_bytes
from repro.functionalities.dummy import DummyBroadcastParty
from repro.protocols.common import unpad_message
from repro.tle.astrolabous import PuzzleSolver, ast_decrypt
from repro.uc.adversary import Adversary
from repro.uc.environment import Environment
from repro.uc.errors import ResourceExhausted
from repro.uc.session import Session


class BudgetedSolver(Adversary):
    """Grab the first (c, y) leak; solve with the coalition's budget."""

    def __init__(self, fixture, mule: str) -> None:
        super().__init__()
        self.fixture = fixture
        self.mule = mule
        self.solver = None
        self.mask = None
        self.seen_at = None
        self.solved_at = None
        self.recovered = None

    def on_party_registered(self, party):
        if party.pid == self.mule:
            self.corrupt(self.mule)

    def on_leak(self, source, detail):
        super().on_leak(source, detail)
        if self.solver is None and isinstance(detail, tuple) and len(detail) == 4:
            if detail[0] != "Broadcast":
                return
            payload = detail[2]
            if isinstance(payload, tuple) and len(payload) == 2:
                ciphertext, mask = payload
                self.solver = PuzzleSolver(ciphertext)
                self.mask = mask
                self.seen_at = self.session.clock.time
                self._grind()

    def on_party_activated(self, party):
        self._grind()

    def on_round_advanced(self, new_time):
        self._grind()

    def _grind(self):
        if self.solver is None or self.solver.solved:
            return
        wrapper = self.fixture.wrapper
        while not self.solver.solved:
            try:
                response = wrapper.evaluate_one(self.mule, self.solver.next_query())
            except ResourceExhausted:
                return  # out of sequential budget this round
            self.solver.absorb(response)
        self.solved_at = self.session.clock.time
        rho = ast_decrypt(self.solver.ciphertext, self.solver.witness)
        eta = self.fixture.oracle.query(rho, querier="A")
        self.recovered = unpad_message(xor_bytes(self.mask, eta))


def test_adversary_opens_exactly_one_round_early():
    session = Session(seed=101)
    fixture = build_fbc_fixture(session, q=4)
    adversary = BudgetedSolver(fixture, mule="P2")
    session.adversary = adversary
    adversary.attach(session)
    parties = {}
    for i in range(3):
        party = DummyBroadcastParty(session, f"P{i}", fixture.fbc)
        fixture.fbc.attach(party)
        parties[f"P{i}"] = party
    env = Environment(session)

    # run_round executes round 0 and advances the clock into round 1; the
    # adversary grinds q links with round 0's budget (not enough: the
    # chain has 2q) and q more the instant round 1's budget exists.
    env.run_round([("P0", lambda p: p.broadcast(b"the-secret"))])
    assert adversary.seen_at == 0
    assert adversary.solver is not None and adversary.solver.solved
    assert adversary.solved_at == 1
    assert adversary.recovered == b"the-secret"

    # Honest parties deliver only during round 2's ticks:
    assert parties["P1"].outputs == []
    env.run_rounds(1)  # executes round 1
    assert parties["P1"].outputs == []
    env.run_rounds(1)  # executes round 2: delivery
    assert parties["P1"].outputs == [("Broadcast", b"the-secret")]

    # Real advantage (1 round) is within the functionality's α = 2 bound.
    honest_round = 2
    assert honest_round - adversary.solved_at == 1 <= fixture.fbc.alpha
