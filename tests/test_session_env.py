"""Session registry, corruption model, environment driving, trace."""

import pytest

from repro.uc.adversary import Adversary, StaticCorruptor
from repro.uc.entity import Functionality, Party
from repro.uc.environment import Environment
from repro.uc.errors import CorruptionError, UnknownEntity
from repro.uc.session import Session


def test_duplicate_party_rejected(session):
    Party(session, "P0")
    with pytest.raises(ValueError):
        Party(session, "P0")


def test_duplicate_functionality_rejected(session):
    Functionality(session, "F")
    with pytest.raises(ValueError):
        Functionality(session, "F")


def test_lookup_errors(session):
    with pytest.raises(UnknownEntity):
        session.party("nope")
    with pytest.raises(UnknownEntity):
        session.functionality("nope")


def test_double_corruption_rejected(session):
    Party(session, "P0")
    session.corrupt("P0")
    with pytest.raises(CorruptionError):
        session.corrupt("P0")


def test_corruption_exposes_machine(session):
    party = Party(session, "P0")
    exposed = session.corrupt("P0")
    assert exposed is party
    assert party.corrupted


def test_honest_parties_view(session):
    Party(session, "P0")
    Party(session, "P1")
    session.corrupt("P0")
    assert list(session.honest_parties) == ["P1"]


def test_random_bytes_deterministic():
    a = Session(seed=5).random_bytes(16)
    b = Session(seed=5).random_bytes(16)
    assert a == b
    assert Session(seed=6).random_bytes(16) != a


def test_fresh_tags_unique(session):
    tags = {session.fresh_tag() for _ in range(100)}
    assert len(tags) == 100


def test_static_corruptor():
    adv = StaticCorruptor(["P1"])
    session = Session(seed=0, adversary=adv)
    Party(session, "P0")
    Party(session, "P1")
    assert session.is_corrupted("P1")
    assert not session.is_corrupted("P0")


def test_environment_skips_corrupted_inputs():
    session = Session(seed=0)
    Party(session, "P0")
    Party(session, "P1")
    session.corrupt("P0")
    env = Environment(session)
    hits = []
    env.run_round([("P0", lambda p: hits.append(p.pid))])
    assert hits == []


def test_environment_activation_order():
    session = Session(seed=0)
    order = []

    class Probe(Party):
        def end_of_round(self):
            order.append(self.pid)

    Probe(session, "P0")
    Probe(session, "P1")
    Probe(session, "P2")
    Environment(session).run_round((), order=["P2", "P0", "P1"])
    assert order == ["P2", "P0", "P1"]


def test_run_until_liveness_failure():
    session = Session(seed=0)
    Party(session, "P0")
    env = Environment(session)
    with pytest.raises(RuntimeError):
        env.run_until(lambda s: False, max_rounds=3)


def test_adversary_observes_leaks(session):
    f = Functionality(session, "F")
    f.leak(("hello",))
    assert session.adversary.observed == [("F", ("hello",))]


def test_mid_round_corruption_via_leak_hook():
    """The non-atomic model: a leak-triggered corruption lands mid-round."""

    class CorruptOnLeak(Adversary):
        def on_leak(self, source, detail):
            super().on_leak(source, detail)
            if detail == ("trigger",) and "P0" not in self.corrupted_parties:
                self.corrupt("P0")

    session = Session(seed=0, adversary=CorruptOnLeak())
    Party(session, "P0")
    f = Functionality(session, "F")
    assert not session.is_corrupted("P0")
    f.leak(("trigger",))
    assert session.is_corrupted("P0")


def test_trace_records_and_filters(session):
    Party(session, "P0")
    session.log.record(0, "custom", "tester", "detail")
    events = session.log.filter(kind="custom")
    assert len(events) == 1
    assert events[0].source == "tester"
    assert session.log.first("custom").detail == "detail"
    assert session.log.last("custom").seq == events[0].seq


def test_metrics_snapshot_diff(session):
    session.metrics.inc("x", 3)
    before = session.metrics.snapshot()
    session.metrics.inc("x", 2)
    session.metrics.inc("y")
    assert session.metrics.diff(before) == {"x": 2, "y": 1}
