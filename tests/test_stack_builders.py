"""Stack builders: parameter validation and world wiring invariants."""

import pytest

from repro.core import (
    build_durs_stack,
    build_sbc_stack,
    build_tle_stack,
    build_voting_stack,
)
from repro.core.stacks import build_fbc_fixture
from repro.uc.session import Session


def test_invalid_mode_rejected():
    for builder in (build_sbc_stack, build_tle_stack, build_durs_stack, build_voting_stack):
        with pytest.raises(ValueError):
            builder(mode="nonsense")


def test_sbc_theorem2_parameter_checks():
    # Φ must exceed the TLE delay (hybrid: delay=1 ⇒ Φ ≥ 2 ok, Φ=1 not).
    with pytest.raises(ValueError):
        build_sbc_stack(mode="hybrid", phi=1)
    # Δ must exceed the leakage advantage (hybrid: 1 ⇒ Δ ≥ 2).
    with pytest.raises(ValueError):
        build_sbc_stack(mode="hybrid", delta=1)
    # Composed world: delay = 3, advantage = 2 ⇒ Φ > 3, Δ > 2.
    with pytest.raises(ValueError):
        build_sbc_stack(mode="composed", phi=3)
    with pytest.raises(ValueError):
        build_sbc_stack(mode="composed", delta=2)


def test_durs_theorem3_parameter_checks():
    with pytest.raises(ValueError):
        build_durs_stack(mode="hybrid", phi=5, delta=5)  # needs delta > phi
    with pytest.raises(ValueError):
        build_durs_stack(mode="hybrid", phi=3, delta=4, alpha=2)  # delta-phi < alpha


def test_corollary1_defaults_satisfy_bounds():
    stack = build_sbc_stack(mode="composed")
    assert stack.phi > 3 and stack.delta > 2
    assert stack.sbc.alpha == 3  # Corollary 1's α


def test_hybrid_alpha_is_two():
    stack = build_sbc_stack(mode="hybrid")
    assert stack.sbc.alpha == 2


def test_distinct_oracles_per_layer():
    stack = build_sbc_stack(mode="composed", seed=1)
    fids = set(stack.session.functionalities)
    # Each layer has its own (wrapped) oracle instance:
    assert any(f.startswith("F*RO:fbc") for f in fids)
    assert "F*RO:tle" in fids
    assert "FRO:sbc" in fids
    assert "FRO:tle" in fids


def test_fbc_fixture_oracle_sizes():
    session = Session(seed=1)
    fixture = build_fbc_fixture(session, q=4, msg_len=512)
    assert fixture.oracle.digest_size == 512
    assert fixture.fbc.msg_len == 512


def test_tle_stack_modes_have_consistent_interface():
    for mode in ("ideal", "hybrid", "composed"):
        stack = build_tle_stack(mode=mode, seed=1)
        assert hasattr(stack.tle, "delay")
        assert callable(stack.tle.leak_fn)
        assert stack.tle.leak_fn(5) >= 5


def test_outputs_helper():
    stack = build_sbc_stack(n=2, mode="ideal", seed=1)
    assert stack.outputs() == {"P0": [], "P1": []}
    stack.parties["P0"].broadcast(b"x")
    stack.run_until_delivery()
    outputs = stack.outputs()
    assert outputs["P1"] and outputs["P1"][0][0] == "Broadcast"


def test_delivered_before_release_is_none():
    stack = build_sbc_stack(n=2, mode="ideal", seed=1)
    stack.parties["P0"].broadcast(b"x")
    stack.run_rounds(2)
    assert stack.delivered() == {"P0": None, "P1": None}


def test_seed_determinism_across_builds():
    batches = []
    for _ in range(2):
        stack = build_sbc_stack(n=3, mode="composed", seed=77)
        stack.parties["P0"].broadcast(b"det")
        stack.run_until_delivery()
        batches.append(str(stack.delivered()))
    assert batches[0] == batches[1]
