"""Dolev–Strong over real Schnorr signatures (Fcert realized)."""

import pytest

from repro.functionalities.cert_adapter import real_cert_suite
from repro.protocols.dolev_strong import BOTTOM, make_dolev_strong_instance
from repro.uc.environment import Environment
from repro.uc.errors import CorruptionError
from repro.uc.session import Session


def test_signer_cert_roundtrip():
    session = Session(seed=1)
    certs = real_cert_suite(session, ["P0", "P1"])
    sig = certs["P0"].sign("P0", b"message")
    assert certs["P0"].verify(b"message", sig)
    assert not certs["P0"].verify(b"other", sig)
    assert not certs["P1"].verify(b"message", sig)  # wrong signer's key
    assert not certs["P0"].verify(b"message", b"short")


def test_signer_cert_rejects_impostor():
    session = Session(seed=1)
    certs = real_cert_suite(session, ["P0"])
    with pytest.raises(CorruptionError):
        certs["P0"].sign("P1", b"m")


def test_dolev_strong_over_schnorr_signatures():
    session = Session(seed=2)
    pids = ["P0", "P1", "P2", "P3"]
    certs = real_cert_suite(session, pids)
    parties = make_dolev_strong_instance(session, pids, "P0", t=2, certs=certs)
    env = Environment(session)
    for party in parties.values():
        party.arm(0)
    parties["P0"].broadcast(b"computationally signed")
    env.run_rounds(4)
    for party in parties.values():
        assert party.outputs[-1][1] == b"computationally signed"
    # Real signature operations actually happened:
    assert session.metrics.get("sig.sign") >= 4
    assert session.metrics.get("sig.verify") > 0


def test_dolev_strong_over_schnorr_rejects_forged_chain():
    session = Session(seed=3)
    pids = ["P0", "P1", "P2"]
    certs = real_cert_suite(session, pids)
    parties = make_dolev_strong_instance(session, pids, "P0", t=1, certs=certs)
    network = parties["P0"].network
    session.corrupt("P2")
    for party in parties.values():
        party.arm(0)
    # Without P0's key, P2 cannot fabricate a chain that verifies:
    network.adv_send("P2", "P1", (("DS", "ds0"), b"forged", (("P0", b"\x00" * 128),)))
    env = Environment(session)
    env.run_rounds(3)
    assert parties["P1"].outputs[-1][1] == BOTTOM
