"""ΠRBC = Dolev–Strong (Fact 1): validity, agreement, round counts."""

import pytest

from repro.protocols.dolev_strong import (
    BOTTOM,
    make_dolev_strong_instance,
)
from repro.uc.adversary import Adversary
from repro.uc.encoding import encode
from repro.uc.environment import Environment
from repro.uc.session import Session


def _run(session, parties, sender, message, t, rounds=None):
    env = Environment(session)
    for party in parties.values():
        party.arm(session.clock.time)
    if message is not None:
        parties[sender].broadcast(message)
    env.run_rounds(rounds if rounds is not None else t + 2)
    return env


def _decisions(parties):
    return {
        pid: party.outputs[-1][1] if party.outputs else None
        for pid, party in parties.items()
    }


def test_validity_honest_sender():
    session = Session(seed=1)
    parties = make_dolev_strong_instance(session, ["P0", "P1", "P2", "P3"], "P0", t=2)
    _run(session, parties, "P0", b"value", t=2)
    assert all(d == b"value" for d in _decisions(parties).values())


def test_no_broadcast_outputs_bottom():
    session = Session(seed=1)
    parties = make_dolev_strong_instance(session, ["P0", "P1", "P2"], "P0", t=1)
    _run(session, parties, "P0", None, t=1)
    assert all(d == BOTTOM for d in _decisions(parties).values())


def test_decision_takes_t_plus_one_relay_rounds():
    session = Session(seed=1)
    t = 3
    parties = make_dolev_strong_instance(
        session, [f"P{i}" for i in range(5)], "P0", t=t
    )
    env = Environment(session)
    for party in parties.values():
        party.arm(0)
    parties["P0"].broadcast(b"v")
    env.run_rounds(t)  # not yet: decision happens at relative round t+1
    assert all(not p.decided for p in parties.values())
    env.run_rounds(2)
    assert all(p.decided for p in parties.values())


def test_message_complexity_order_n_squared():
    for n in (3, 5):
        session = Session(seed=1)
        parties = make_dolev_strong_instance(
            session, [f"P{i}" for i in range(n)], "P0", t=1
        )
        _run(session, parties, "P0", b"v", t=1)
        sent = session.metrics.get("messages.p2p")
        # initial send (n) + each party relays once (<= n per relay)
        assert sent <= n * n * 2
        assert sent >= n  # at least the initial fan-out


class EquivocatingSender(Adversary):
    """Corrupted sender sends value A to half the parties, B to the rest."""

    def __init__(self, network, certs, sender, pids, instance="ds0"):
        super().__init__()
        self.network = network
        self.certs = certs
        self.sender = sender
        self.pids = pids
        self.instance = instance

    def start(self, session):
        self.corrupt(self.sender)
        payload_a, payload_b = b"A", b"B"
        sid = session.sid
        half = len(self.pids) // 2
        for value, group in ((payload_a, self.pids[:half]), (payload_b, self.pids[half:])):
            signature = self.certs[self.sender].sign(
                self.sender, encode(("DS", sid, self.sender, value))
            )
            chain = ((self.sender, signature),)
            for pid in group:
                self.network.adv_send(
                    self.sender, pid, (("DS", self.instance), value, chain)
                )


def test_agreement_under_equivocating_sender():
    """A corrupted sender equivocates; honest parties agree (on ⊥)."""
    session = Session(seed=1)
    pids = [f"P{i}" for i in range(4)]
    parties = make_dolev_strong_instance(session, pids, "P0", t=1)
    network = parties["P0"].network
    certs = parties["P0"].certs
    adv = EquivocatingSender(network, certs, "P0", pids[1:])
    adv.attach(session)
    session.adversary = adv
    for party in parties.values():
        party.arm(0)
    adv.start(session)
    Environment(session).run_rounds(4)
    decisions = {
        pid: party.outputs[-1][1]
        for pid, party in parties.items()
        if pid != "P0" and party.outputs
    }
    assert len(decisions) == 3
    assert len(set(decisions.values())) == 1  # agreement
    assert list(decisions.values())[0] == BOTTOM  # both values accepted -> ⊥


def test_forged_chain_rejected():
    """A chain whose signatures do not verify is ignored."""
    session = Session(seed=1)
    pids = ["P0", "P1", "P2"]
    parties = make_dolev_strong_instance(session, pids, "P0", t=1)
    network = parties["P0"].network
    session.corrupt("P2")
    for party in parties.values():
        party.arm(0)
    # P2 injects a value with a bogus sender signature.
    network.adv_send("P2", "P1", (("DS", "ds0"), b"forged", (("P0", b"junk"),)))
    Environment(session).run_rounds(3)
    assert parties["P1"].outputs[-1][1] == BOTTOM  # nothing valid accepted


def test_chain_with_duplicate_signers_rejected():
    session = Session(seed=1)
    pids = ["P0", "P1", "P2"]
    parties = make_dolev_strong_instance(session, pids, "P0", t=1)
    party = parties["P1"]
    cert = parties["P0"].certs["P0"]
    # Build a "valid-looking" chain that reuses the sender twice.
    payload = encode(("DS", session.sid, "P0", b"v"))
    session.corrupt("P0")
    sig = cert.sign("P0", payload)
    chain = (("P0", sig), ("P0", sig))
    assert not party._valid_chain(b"v", chain, minimum=2)


def test_wrong_sender_first_rejected():
    session = Session(seed=1)
    pids = ["P0", "P1", "P2"]
    parties = make_dolev_strong_instance(session, pids, "P0", t=1)
    p1 = parties["P1"]
    payload = encode(("DS", session.sid, "P0", b"v"))
    sig = parties["P1"].certs["P1"].sign("P1", payload)
    assert not p1._valid_chain(b"v", (("P1", sig),), minimum=1)


def test_non_sender_cannot_broadcast():
    session = Session(seed=1)
    parties = make_dolev_strong_instance(session, ["P0", "P1"], "P0", t=0)
    with pytest.raises(ValueError):
        parties["P1"].broadcast(b"x")
