"""Unit coverage for the scenario subsystem: specs, faults, properties, CLI."""

import json

import pytest

from repro.cli import main
from repro.runtime import (
    BatchScheduler,
    SessionPool,
    TraceDigestUnavailable,
    compare_trace_digests,
    reports_match,
)
from repro.scenarios import (
    FaultPlan,
    FaultyScheduler,
    TraceUnavailable,
    default_matrix,
    evaluate_scenario,
    run_scenario,
)
from repro.scenarios.adversaries import make_adversary
from repro.scenarios.properties import evaluate
from repro.scenarios.spec import ScenarioSpec, expected_for, payload_for


# ---------------------------------------------------------------------------
# Specs and matrices
# ---------------------------------------------------------------------------


def test_matrix_expansion_is_deterministic():
    first = default_matrix().expand()
    second = default_matrix().expand()
    assert first == second
    assert len({spec.cell_id for spec in first}) == len(first)


def test_expectations_cover_every_matrix_pair():
    matrix = default_matrix()
    for stack in matrix.stacks:
        for adversary in matrix.adversaries:
            assert expected_for(stack, adversary)


def test_unknown_expectation_pair_is_refused():
    with pytest.raises(KeyError):
        expected_for("sbc-hybrid", "bias")


def test_spec_accessors():
    spec = ScenarioSpec(name="x", stack="sbc-composed", params=(("phi", 7),))
    assert spec.family == "sbc"
    assert spec.mode == "composed"
    assert spec.param("phi") == 7
    assert spec.param("missing", 9) == 9
    assert spec.replace(seed=5).seed == 5
    assert "sbc-composed/passive/none/sequential#0" == spec.cell_id


def test_unknown_stack_and_strategy_errors():
    with pytest.raises(KeyError):
        run_scenario(ScenarioSpec(name="x", stack="warp"))
    with pytest.raises(KeyError):
        make_adversary(ScenarioSpec(name="x", stack="ubc", adversary="warp"))


# ---------------------------------------------------------------------------
# Fault plans
# ---------------------------------------------------------------------------


def test_activation_orders_are_permutations():
    pids = [f"P{i}" for i in range(5)]
    for activation in ("reversed", "rotate", "shuffle"):
        plan = FaultPlan(name=activation, activation=activation)
        for round_index in (0, 1, 7):
            order = plan.order_for_round(round_index, pids)
            assert sorted(order) == sorted(pids)
            assert order == plan.order_for_round(round_index, pids)  # deterministic
    assert FaultPlan().order_for_round(0, pids) is None
    assert FaultPlan(activation="rotate").order_for_round(2, pids) == (
        pids[2:] + pids[:2]
    )
    with pytest.raises(ValueError):
        FaultPlan(activation="bogus")
    with pytest.raises(ValueError):
        FaultPlan(stagger=-1)


def test_stagger_schedules_inputs():
    plan = FaultPlan(stagger=2)
    assert [plan.input_round(i) for i in range(3)] == [0, 2, 4]


def _net_item(sender, recipient="R", payload="m"):
    return (recipient, (sender, payload))


def test_faulty_scheduler_drop_and_delay_and_reorder():
    plan = FaultPlan(
        name="chaos", net_drop_from=("P2",), net_delay_from=("P0",),
        net_reorder=True, net_reorder_seed=3,
    )
    scheduler = FaultyScheduler(policy="fifo", plan=plan)
    for sender in ("P0", "P1", "P2", "P3", "P1"):
        key, item = _net_item(sender)
        scheduler.enqueue("net", key, item)
    batch = scheduler.drain("net")
    senders = [item[0] for _key, item in batch]
    assert "P2" not in senders  # dropped
    assert len(scheduler.dropped) == 1
    assert senders[-1] == "P0"  # delayed to the batch tail
    assert sorted(senders) == ["P0", "P1", "P1", "P3"]  # nothing else lost
    # Deterministic: an identical scheduler produces the identical batch.
    again = FaultyScheduler(policy="fifo", plan=plan)
    for sender in ("P0", "P1", "P2", "P3", "P1"):
        key, item = _net_item(sender)
        again.enqueue("net", key, item)
    assert again.drain("net") == batch


def test_faulty_scheduler_passes_foreign_item_shapes():
    plan = FaultPlan(net_drop_from=("P0",))
    scheduler = FaultyScheduler(plan=plan)
    scheduler.enqueue("raw", "k", 42)  # not (sender, payload)-shaped
    assert scheduler.drain("raw") == [("k", 42)]


def test_fault_install_swaps_scheduler_only_when_needed():
    from repro.uc.session import Session

    plain = Session(seed=1)
    FaultPlan().install(plain)
    assert type(plain.scheduler) is BatchScheduler

    faulty = Session(seed=1)
    FaultPlan(net_reorder=True).install(faulty)
    assert isinstance(faulty.scheduler, FaultyScheduler)
    assert faulty.scheduler.policy == faulty.backend.scheduler_policy


# ---------------------------------------------------------------------------
# Properties: the trace-off guard
# ---------------------------------------------------------------------------


def test_trace_properties_refuse_light_mode():
    spec = ScenarioSpec(
        name="light", stack="ubc",
        expect=(("plaintext_secrecy", False),),
        backend="batched",
    )
    outcome = run_scenario(spec)
    assert outcome.digest == ""
    with pytest.raises(TraceUnavailable):
        evaluate(outcome, {"plaintext_secrecy": False})
    with pytest.raises(TraceUnavailable):
        evaluate(outcome, {"simultaneous_delivery": True})
    # Output-based properties still work without a trace.
    results = evaluate(outcome, {"delivery": True, "agreement": True})
    assert all(result.ok for result in results)


def test_unknown_property_name_is_refused():
    outcome = run_scenario(ScenarioSpec(name="u", stack="ubc", expect=()))
    with pytest.raises(KeyError):
        evaluate(outcome, {"warp_resistance": True})


# ---------------------------------------------------------------------------
# The trace_digest comparison guard (vacuous "" == "" must error)
# ---------------------------------------------------------------------------


def test_compare_trace_digests_guards_vacuous_equality():
    assert compare_trace_digests("a", "a")
    assert not compare_trace_digests("a", "b")
    assert not compare_trace_digests("a", "")  # one-sided: plain inequality
    with pytest.raises(TraceDigestUnavailable):
        compare_trace_digests("", "")


def test_reports_match_errors_on_trace_off_pools():
    params = dict(n=3, mode="hybrid", phi=4, delta=2)
    light = SessionPool(backend="batched", **params).run([0, 1])
    with pytest.raises(TraceDigestUnavailable):
        reports_match(light, light)
    full = SessionPool(backend="pooled", **params).run([0, 1])
    assert reports_match(full, full)
    with pytest.raises(ValueError):
        reports_match(full, SessionPool(backend="pooled", **params).run([0]))


# ---------------------------------------------------------------------------
# Scenario payloads and cell results
# ---------------------------------------------------------------------------


def test_payloads_are_distinct_markers():
    assert payload_for("P0") != payload_for("P1")
    assert payload_for("P0").startswith(b"scn:")


def test_cell_result_summary_shape():
    spec = default_matrix().expand()[0]
    cell = evaluate_scenario(spec)
    record = cell.summary()
    assert record["cell"] == spec.cell_id
    assert record["ok"] is True
    assert set(record["properties"]) == set(spec.expectations())
    json.dumps(record)  # JSON-serializable end to end


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_scenarios_list(capsys):
    assert main(["scenarios", "list", "--cell", "ubc/"]) == 0
    out = capsys.readouterr().out
    assert "ubc/passive/none/sequential#0" in out


def test_cli_scenarios_run_json(capsys):
    assert main([
        "scenarios", "run", "--backend", "sequential", "--cell", "fbc/",
        "--json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["failed"] == 0
    assert payload["backend_mismatches"] == []
    assert all(cell["ok"] for cell in payload["cells"])


def test_cli_scenarios_no_match(capsys):
    assert main(["scenarios", "run", "--cell", "no-such-cell"]) == 2
