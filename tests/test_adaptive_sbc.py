"""Adaptive corruption during an SBC session: the protocol-level facts.

The strong model lets the adversary corrupt senders mid-period.  What
must survive: messages already committed to the channel deliver
unchanged; the session terminates at Φ+Δ regardless of who stops
participating; corrupted senders gain no early information.
"""

import pytest

from repro.core import build_sbc_stack
from repro.uc.adversary import Adversary


class CorruptAtRound(Adversary):
    """Corrupt a fixed party at the start of a given round."""

    def __init__(self, victim: str, at_round: int) -> None:
        super().__init__()
        self.victim = victim
        self.at_round = at_round

    def on_round_advanced(self, new_time: int) -> None:
        if new_time == self.at_round and self.victim not in self.corrupted_parties:
            self.corrupt(self.victim)


@pytest.mark.parametrize("mode", ("hybrid", "composed"))
def test_sender_corrupted_after_commit_message_still_delivers(mode):
    """Once the (c, τ, y) triple is on the UBC channel the message is
    everyone's: corrupting its sender afterwards changes nothing.

    The commit lands on UBC at round ``tle.delay`` (when the matured
    ciphertext is retrieved), so the corruption is scheduled right after.
    """
    commit_round = {"hybrid": 1, "composed": 3}[mode]  # = tle.delay
    adversary = CorruptAtRound(victim="P0", at_round=commit_round + 1)
    stack = build_sbc_stack(n=4, mode=mode, seed=51, adversary=adversary)
    stack.parties["P0"].broadcast(b"committed-before-corruption")
    stack.parties["P1"].broadcast(b"from-an-honest-peer")
    stack.run_rounds(stack.phi + stack.delta + 1)
    for pid in ("P1", "P2", "P3"):
        batches = [o[1] for o in stack.parties[pid].outputs if o[0] == "Broadcast"]
        assert batches, f"{pid} must terminate"
        assert b"committed-before-corruption" in batches[-1]
        assert b"from-an-honest-peer" in batches[-1]


@pytest.mark.parametrize("mode", ("hybrid", "composed"))
def test_liveness_with_mid_period_crash(mode):
    """A party corrupted (and silenced) mid-period cannot stall the rest."""
    adversary = CorruptAtRound(victim="P2", at_round=2)
    stack = build_sbc_stack(n=4, mode=mode, seed=52, adversary=adversary)
    stack.parties["P0"].broadcast(b"m")
    stack.run_rounds(stack.phi + stack.delta + 1)
    for pid in ("P0", "P1", "P3"):
        assert stack.parties[pid].outputs, "honest parties must terminate"


def test_majority_corruption_mid_session():
    """Dishonest majority formed adaptively: the survivors still finish."""

    class CorruptMany(Adversary):
        def on_round_advanced(self, new_time):
            if new_time == 2:
                for pid in ("P1", "P2", "P3"):
                    if pid not in self.corrupted_parties:
                        self.corrupt(pid)

    stack = build_sbc_stack(n=5, mode="hybrid", seed=53, adversary=CorruptMany())
    stack.parties["P0"].broadcast(b"lone-honest-message")
    stack.run_rounds(stack.phi + stack.delta + 1)
    for pid in ("P0", "P4"):
        batches = [o[1] for o in stack.parties[pid].outputs if o[0] == "Broadcast"]
        assert batches and b"lone-honest-message" in batches[-1]


def test_corrupted_sender_state_exposed_but_no_early_plaintexts():
    """Corruption exposes the victim's own state — not other senders'."""

    class InspectOnCorrupt(Adversary):
        def __init__(self):
            super().__init__()
            self.exposed_pending = None

        def on_round_advanced(self, new_time):
            if new_time == 2 and "P1" not in self.corrupted_parties:
                self.corrupt("P1")

        def on_corrupted(self, party):
            # The adversary reads the victim's SBC-layer state.
            state = party.sbc._st(party.pid)
            self.exposed_pending = list(state.pending)

    adversary = InspectOnCorrupt()
    stack = build_sbc_stack(n=3, mode="hybrid", seed=54, adversary=adversary)
    stack.parties["P0"].broadcast(b"p0-secret")
    stack.parties["P1"].broadcast(b"p1-own-message")
    stack.run_rounds(stack.phi + stack.delta + 1)
    # The adversary learned P1's own pending message (its state is its
    # state)...
    assert adversary.exposed_pending is not None
    exposed = [m for _rho, m in adversary.exposed_pending]
    assert exposed in ([b"p1-own-message"], [])
    # ...but nothing in its whole view reveals P0's plaintext early:
    # (outputs exist only at the release round, checked by other tests;
    #  here we scan the leak stream)
    for _fid, detail in adversary.observed:
        assert b"p0-secret" not in repr(detail).encode()
