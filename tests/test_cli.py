"""CLI smoke tests: every subcommand runs and prints sane output."""

import pytest

from repro.cli import build_parser, main


def test_sbc_command(capsys):
    assert main(["sbc", "--n", "3", "--mode", "hybrid", "--messages", "a", "b"]) == 0
    out = capsys.readouterr().out
    assert "delivered: b'a'" in out and "delivered: b'b'" in out


def test_sbc_command_composed(capsys):
    assert main(["sbc", "--mode", "composed", "--seed", "5"]) == 0
    out = capsys.readouterr().out
    assert "release=8" in out


def test_beacon_command(capsys):
    assert main(["beacon", "--n", "4"]) == 0
    out = capsys.readouterr().out
    assert "uniform random string" in out
    hex_part = out.strip().rsplit(" ", 1)[-1]
    assert len(hex_part) == 64  # 32 bytes


def test_election_command(capsys):
    assert main(["election", "--voters", "3"]) == 0
    out = capsys.readouterr().out
    assert "self-tally" in out and "'yes': 2" in out


def test_election_ideal_mode(capsys):
    assert main(["election", "--voters", "2", "--mode", "ideal"]) == 0
    assert "self-tally" in capsys.readouterr().out


def test_auction_command(capsys):
    assert main(["auction", "--bids", "10", "99", "55"]) == 0
    out = capsys.readouterr().out
    assert "winner: P1 at 99" in out


def test_lineage_command(capsys):
    assert main(["lineage", "--n", "8"]) == 0
    out = capsys.readouterr().out
    assert "this-paper" in out and "CGMA85" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_deterministic_given_seed(capsys):
    main(["beacon", "--seed", "9"])
    first = capsys.readouterr().out
    main(["beacon", "--seed", "9"])
    second = capsys.readouterr().out
    assert first == second


def test_sweep_command_inline(capsys):
    assert main([
        "sweep", "--sessions", "3", "--n", "3", "--executor", "inline",
    ]) == 0
    out = capsys.readouterr().out
    assert "sweep plan" in out and "per-session" in out


def test_sweep_command_process_verify(capsys):
    assert main([
        "sweep", "--sessions", "4", "--n", "3", "--executor", "process",
        "--workers", "2", "--chunksize", "2", "--verify",
    ]) == 0
    out = capsys.readouterr().out
    assert "trace digests match inline reference, seed for seed: yes" in out
    assert "forcing --trace full" in out  # light default upgraded for --verify


def test_bench_command_process_executor(capsys):
    assert main([
        "bench", "--sessions", "4", "--n", "3", "--executor", "process",
        "--workers", "2", "--chunksize", "2", "--trace", "full", "--compare",
    ]) == 0
    out = capsys.readouterr().out
    assert "trace digests match sequential reference: yes" in out
