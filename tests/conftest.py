"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.uc.environment import Environment
from repro.uc.session import Session


@pytest.fixture
def session() -> Session:
    """A fresh deterministic session."""
    return Session(seed=1234)


@pytest.fixture
def env(session: Session) -> Environment:
    """An environment driving the ``session`` fixture."""
    return Environment(session)


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG independent of any session."""
    return random.Random(99)


def broadcast_action(message):
    """An Environment action calling ``party.broadcast(message)``."""
    return lambda party: party.broadcast(message)
