"""Σ-protocol proofs: completeness and soundness rejection paths."""

import pytest

from repro.crypto.groups import TEST_GROUP
from repro.crypto.zkp import (
    BallotProof,
    ballot_prove,
    ballot_verify,
    cp_prove,
    cp_verify,
    pok_prove,
    pok_verify,
)

G = TEST_GROUP


def test_pok_completeness(rng):
    x = G.random_scalar(rng)
    y = G.power_of_g(x)
    proof = pok_prove(G, G.g, y, x, rng)
    assert pok_verify(G, G.g, y, proof)


def test_pok_wrong_statement(rng):
    x = G.random_scalar(rng)
    proof = pok_prove(G, G.g, G.power_of_g(x), x, rng)
    assert not pok_verify(G, G.g, G.power_of_g(x + 1), proof)


def test_pok_nonstandard_base(rng):
    base = G.random_element(rng)
    x = G.random_scalar(rng)
    proof = pok_prove(G, base, G.exp(base, x), x, rng)
    assert pok_verify(G, base, G.exp(base, x), proof)


def test_cp_completeness(rng):
    x = G.random_scalar(rng)
    b1, b2 = G.random_element(rng), G.random_element(rng)
    proof = cp_prove(G, b1, G.exp(b1, x), b2, G.exp(b2, x), x, rng)
    assert cp_verify(G, b1, G.exp(b1, x), b2, G.exp(b2, x), proof)


def test_cp_unequal_logs_rejected(rng):
    x, y = G.random_scalar(rng), G.random_scalar(rng)
    b1, b2 = G.random_element(rng), G.random_element(rng)
    proof = cp_prove(G, b1, G.exp(b1, x), b2, G.exp(b2, y), x, rng)
    assert not cp_verify(G, b1, G.exp(b1, x), b2, G.exp(b2, y), proof)


def _make_ballot(rng, vote, choices, key_base=None):
    key_base = key_base or G.g
    x = G.random_scalar(rng)
    w = G.exp(key_base, x)
    seed = G.random_element(rng)
    ballot = G.mul(G.exp(seed, x), G.power_of_g(vote))
    proof = ballot_prove(
        G, seed, w, ballot, x, vote, choices, rng, key_base=key_base
    )
    return seed, w, ballot, proof


def test_ballot_completeness_all_choices(rng):
    choices = [1, 5, 25]
    for vote in choices:
        seed, w, ballot, proof = _make_ballot(rng, vote, choices)
        assert ballot_verify(G, seed, w, ballot, proof, choices)


def test_ballot_with_custom_key_base(rng):
    base = G.random_element(rng)
    choices = [1, 5]
    seed, w, ballot, proof = _make_ballot(rng, 5, choices, key_base=base)
    assert ballot_verify(G, seed, w, ballot, proof, choices, key_base=base)
    assert not ballot_verify(G, seed, w, ballot, proof, choices)  # wrong base


def test_ballot_vote_outside_choices_rejected(rng):
    choices = [1, 5]
    x = G.random_scalar(rng)
    w = G.power_of_g(x)
    seed = G.random_element(rng)
    illegal = G.mul(G.exp(seed, x), G.power_of_g(7))  # vote 7 not allowed
    with pytest.raises(ValueError):
        ballot_prove(G, seed, w, illegal, x, 7, choices, rng)


def test_ballot_forged_vote_value_rejected(rng):
    choices = [1, 5]
    seed, w, ballot, proof = _make_ballot(rng, 1, choices)
    other = G.mul(ballot, G.power_of_g(4))  # shift vote 1 -> 5 without key
    assert not ballot_verify(G, seed, w, other, proof, choices)


def test_ballot_wrong_key_rejected(rng):
    choices = [1, 5]
    seed, _w, ballot, proof = _make_ballot(rng, 1, choices)
    other_key = G.power_of_g(G.random_scalar(rng))
    assert not ballot_verify(G, seed, other_key, ballot, proof, choices)


def test_ballot_branch_count_checked(rng):
    choices = [1, 5]
    seed, w, ballot, proof = _make_ballot(rng, 1, choices)
    assert not ballot_verify(G, seed, w, ballot, proof, [1, 5, 25])


def test_ballot_tampered_branch_rejected(rng):
    choices = [1, 5]
    seed, w, ballot, proof = _make_ballot(rng, 1, choices)
    a1, a2, e, s = proof.branches[0]
    forged = BallotProof(branches=((a1, a2, e, (s + 1) % G.q),) + proof.branches[1:])
    assert not ballot_verify(G, seed, w, ballot, forged, choices)


def test_ballot_challenge_sum_checked(rng):
    choices = [1, 5]
    seed, w, ballot, proof = _make_ballot(rng, 1, choices)
    a1, a2, e, s = proof.branches[0]
    forged = BallotProof(branches=((a1, a2, (e + 1) % G.q, s),) + proof.branches[1:])
    assert not ballot_verify(G, seed, w, ballot, forged, choices)
